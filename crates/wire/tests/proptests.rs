//! Property-based tests: every codec must round-trip arbitrary valid
//! representations, and checksums must detect arbitrary single-bit
//! corruption.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use hgw_wire::checksum::{
    crc32c, crc32c_bytewise, internet_checksum, transport_checksum, verify_transport_checksum,
    ChecksumDelta,
};
use hgw_wire::dccp::{DccpRepr, DccpType};
use hgw_wire::dhcp::{DhcpMessage, DhcpMessageType};
use hgw_wire::dns::{DnsMessage, Question, Rcode, Record, RecordData, RecordType};
use hgw_wire::icmp::{IcmpRepr, TimeExceededCode, UnreachCode};
use hgw_wire::ip::{Ipv4Option, Ipv4Repr};
use hgw_wire::sctp::{Chunk, SctpRepr};
use hgw_wire::tcp::{SeqNumber, TcpOption, TcpPacket, TcpRepr};
use hgw_wire::udp::{UdpPacket, UdpRepr};
use hgw_wire::{Ipv4Packet, Protocol, TcpFlags};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|b| Ipv4Addr::new(b[0], b[1], b[2], b[3]))
}

proptest! {
    #[test]
    fn internet_checksum_zero_verifies(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Appending the checksum of `data` makes the sum verify (even-length
        // inputs only — odd lengths shift the appended checksum's alignment,
        // which real protocols never do).
        prop_assume!(data.len() % 2 == 0);
        let ck = internet_checksum(&data);
        let mut with = data.clone();
        with.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn transport_checksum_detects_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 9..128),
        src in arb_addr(),
        dst in arb_addr(),
        bit in 0usize..8,
    ) {
        let mut seg = data.clone();
        // Zero the "checksum field" (bytes 6..8 as in UDP), fill it in.
        seg[6] = 0;
        seg[7] = 0;
        let ck = transport_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        prop_assert!(verify_transport_checksum(src, dst, 17, &seg));
        let idx = data.len() % seg.len();
        seg[idx] ^= 1 << bit;
        // A flip may cancel only if it lands in the checksum field itself in
        // a way that offsets... it cannot: one bit changes the sum.
        prop_assert!(!verify_transport_checksum(src, dst, 17, &seg));
    }

    #[test]
    fn ipv4_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        proto in any::<u8>(),
        ttl in any::<u8>(),
        ident in any::<u16>(),
        dont_frag in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        rr in proptest::option::of((1u8..40, proptest::collection::vec(any::<u8>(), 0..8))),
    ) {
        let mut repr = Ipv4Repr::new(src, dst, Protocol::from(proto));
        repr.ttl = ttl;
        repr.ident = ident;
        repr.dont_frag = dont_frag;
        if let Some((pointer, data)) = rr {
            repr.options.push(Ipv4Option::RecordRoute { pointer, data });
        }
        let buf = repr.emit_with_payload(&payload);
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(packet.payload(), &payload[..]);
        prop_assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn udp_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let repr = UdpRepr { src_port: sport, dst_port: dport };
        let buf = repr.emit_with_payload(src, dst, &payload);
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum(src, dst));
        prop_assert_eq!(packet.payload(), &payload[..]);
        prop_assert_eq!(UdpRepr::parse(&packet, src, dst).unwrap(), repr);
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..64,
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        mss in proptest::option::of(any::<u16>()),
        ts in proptest::option::of((any::<u32>(), any::<u32>())),
    ) {
        let mut options = Vec::new();
        if let Some(m) = mss { options.push(TcpOption::MaxSegmentSize(m)); }
        if let Some((v, e)) = ts { options.push(TcpOption::Timestamps(v, e)); }
        let repr = TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq: SeqNumber(seq),
            ack: SeqNumber(ack),
            flags: TcpFlags(flags),
            window,
            options,
        };
        let buf = repr.emit_with_payload(src, dst, &payload);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum(src, dst));
        prop_assert_eq!(packet.payload(), &payload[..]);
        prop_assert_eq!(TcpRepr::parse(&packet, src, dst).unwrap(), repr);
    }

    #[test]
    fn icmp_error_roundtrip(
        kind in 0usize..10,
        mtu in any::<u16>(),
        pointer in any::<u8>(),
        invoking in proptest::collection::vec(any::<u8>(), 28..64),
    ) {
        let msg = match kind {
            0 => IcmpRepr::DestUnreachable { code: UnreachCode::NetUnreachable, mtu: 0, invoking },
            1 => IcmpRepr::DestUnreachable { code: UnreachCode::HostUnreachable, mtu: 0, invoking },
            2 => IcmpRepr::DestUnreachable { code: UnreachCode::ProtoUnreachable, mtu: 0, invoking },
            3 => IcmpRepr::DestUnreachable { code: UnreachCode::PortUnreachable, mtu: 0, invoking },
            4 => IcmpRepr::DestUnreachable { code: UnreachCode::FragNeeded, mtu, invoking },
            5 => IcmpRepr::DestUnreachable { code: UnreachCode::SourceRouteFailed, mtu: 0, invoking },
            6 => IcmpRepr::TimeExceeded { code: TimeExceededCode::TtlExceeded, invoking },
            7 => IcmpRepr::TimeExceeded { code: TimeExceededCode::ReassemblyExceeded, invoking },
            8 => IcmpRepr::ParamProblem { pointer, invoking },
            _ => IcmpRepr::SourceQuench { invoking },
        };
        prop_assert_eq!(IcmpRepr::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn icmp_echo_roundtrip(
        ident in any::<u16>(),
        seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        reply in any::<bool>(),
    ) {
        let msg = if reply {
            IcmpRepr::EchoReply { ident, seq, payload }
        } else {
            IcmpRepr::EchoRequest { ident, seq, payload }
        };
        prop_assert_eq!(IcmpRepr::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn sctp_roundtrip(
        sport in any::<u16>(),
        dport in any::<u16>(),
        vtag in any::<u32>(),
        tsn in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        cookie in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = SctpRepr {
            src_port: sport,
            dst_port: dport,
            verification_tag: vtag,
            chunks: vec![
                Chunk::InitAck {
                    init_tag: vtag.wrapping_add(1),
                    a_rwnd: 65535,
                    outbound_streams: 1,
                    inbound_streams: 1,
                    initial_tsn: tsn,
                    cookie,
                },
                Chunk::Data { tsn, stream_id: 0, stream_seq: 0, ppid: 0, data },
                Chunk::Sack { cum_tsn: tsn, a_rwnd: 4096 },
            ],
        };
        prop_assert_eq!(SctpRepr::parse(&repr.emit()).unwrap(), repr);
    }

    #[test]
    fn dccp_roundtrip(
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in 0u64..(1 << 48),
        ack in 0u64..(1 << 48),
        service in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        src in arb_addr(),
        dst in arb_addr(),
        ty in 0usize..4,
    ) {
        let packet_type = [DccpType::Request, DccpType::Response, DccpType::Data, DccpType::DataAck][ty];
        let repr = DccpRepr {
            src_port: sport,
            dst_port: dport,
            packet_type,
            seq,
            ack: packet_type.has_ack().then_some(ack),
            service_code: packet_type.has_service_code().then_some(service),
            payload,
        };
        prop_assert_eq!(DccpRepr::parse(&repr.emit(src, dst), src, dst).unwrap(), repr);
    }

    #[test]
    fn dns_roundtrip(
        id in any::<u16>(),
        labels in proptest::collection::vec("[a-z]{1,12}", 1..5),
        addr in arb_addr(),
        ttl in any::<u32>(),
        is_response in any::<bool>(),
    ) {
        let name = labels.join(".");
        let msg = DnsMessage {
            id,
            is_response,
            recursion_desired: true,
            recursion_available: is_response,
            rcode: Rcode::NoError,
            questions: vec![Question { name: name.clone(), rtype: RecordType::A }],
            answers: if is_response {
                vec![Record { name, ttl, data: RecordData::A(addr) }]
            } else {
                vec![]
            },
        };
        prop_assert_eq!(DnsMessage::parse(&msg.emit()).unwrap(), msg.clone());
        let (tcp_parsed, consumed) = DnsMessage::parse_tcp(&msg.emit_tcp()).unwrap();
        prop_assert_eq!(tcp_parsed, msg.clone());
        prop_assert_eq!(consumed, msg.emit_tcp().len());
    }

    #[test]
    fn dhcp_roundtrip(
        xid in any::<u32>(),
        chaddr in any::<[u8; 6]>(),
        your in arb_addr(),
        router in arb_addr(),
        lease in any::<u32>(),
        n_dns in 0usize..4,
    ) {
        let mut msg = DhcpMessage::discover(xid, chaddr);
        msg.message_type = DhcpMessageType::Ack;
        msg.is_request_op = false;
        msg.your_addr = your;
        msg.router = Some(router);
        msg.lease_secs = Some(lease);
        msg.dns_servers = (0..n_dns).map(|i| Ipv4Addr::new(10, 0, 0, i as u8)).collect();
        prop_assert_eq!(DhcpMessage::parse(&msg.emit()).unwrap(), msg);
    }

    // Differential oracles for the RFC 1624 incremental NAT fast path: a
    // randomized rewrite applied incrementally must produce a buffer that is
    // byte-for-byte identical to setting the fields and recomputing every
    // checksum from scratch (the `NatChecksumMode::FullRecompute` oracle).

    #[test]
    fn nat_tcp_rewrite_incremental_matches_full_recompute(
        src in arb_addr(),
        dst in arb_addr(),
        wan in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ext_port in any::<u16>(),
        ttl in 2u8..255,
        decrement in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let seg = TcpRepr::new(sport, dport, TcpFlags::ACK).emit_with_payload(src, dst, &payload);
        let mut repr = Ipv4Repr::new(src, dst, Protocol::Tcp);
        repr.ttl = ttl;
        let pkt = repr.emit_with_payload(&seg);
        let hl = Ipv4Packet::new_unchecked(&pkt[..]).header_len();

        // Incremental path, in the gateway's outbound rewrite order.
        let mut inc = pkt.clone();
        let mut delta = {
            let mut ip = Ipv4Packet::new_unchecked(&mut inc[..]);
            if decrement {
                let t = ip.ttl();
                ip.set_ttl_adjusted(t - 1);
            }
            ip.set_src_addr_adjusted(wan)
        };
        let mut tcp = TcpPacket::new_unchecked(&mut inc[hl..]);
        delta.update_word(sport, ext_port);
        tcp.set_src_port(ext_port);
        tcp.adjust_checksum(delta);

        // Full-recompute oracle.
        let mut full = pkt.clone();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut full[..]);
            if decrement {
                let t = ip.ttl();
                ip.set_ttl(t - 1);
            }
            ip.set_src_addr(wan);
            ip.fill_checksum();
        }
        let mut tcp = TcpPacket::new_unchecked(&mut full[hl..]);
        tcp.set_src_port(ext_port);
        tcp.fill_checksum(wan, dst);

        prop_assert_eq!(inc, full);
    }

    #[test]
    fn nat_udp_rewrite_incremental_matches_full_recompute(
        src in arb_addr(),
        dst in arb_addr(),
        internal in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        int_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Inbound-direction rewrite: destination address + destination port.
        let dgram = UdpRepr { src_port: sport, dst_port: dport }
            .emit_with_payload(src, dst, &payload);
        let pkt = Ipv4Repr::new(src, dst, Protocol::Udp).emit_with_payload(&dgram);
        let hl = Ipv4Packet::new_unchecked(&pkt[..]).header_len();

        let mut inc = pkt.clone();
        let mut delta = {
            let mut ip = Ipv4Packet::new_unchecked(&mut inc[..]);
            ip.set_dst_addr_adjusted(internal)
        };
        let mut udp = UdpPacket::new_unchecked(&mut inc[hl..]);
        delta.update_word(dport, int_port);
        udp.set_dst_port(int_port);
        udp.adjust_checksum(delta);

        let mut full = pkt.clone();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut full[..]);
            ip.set_dst_addr(internal);
            ip.fill_checksum();
        }
        let mut udp = UdpPacket::new_unchecked(&mut full[hl..]);
        udp.set_dst_port(int_port);
        udp.fill_checksum(src, internal);

        prop_assert_eq!(inc, full);
    }

    #[test]
    fn nat_udp_zero_checksum_stays_zero_under_both_modes(
        src in arb_addr(),
        dst in arb_addr(),
        wan in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ext_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // RFC 768: an all-zero stored checksum means "no checksum". Neither
        // mode may touch it — incremental skips the fixup, full recompute
        // skips the refill — so the datagram stays checksum-less.
        let dgram = UdpRepr { src_port: sport, dst_port: dport }
            .emit_with_payload(src, dst, &payload);
        let mut pkt = Ipv4Repr::new(src, dst, Protocol::Udp).emit_with_payload(&dgram);
        let hl = Ipv4Packet::new_unchecked(&pkt[..]).header_len();
        pkt[hl + 6] = 0; // zero the UDP checksum field
        pkt[hl + 7] = 0;

        let mut inc = pkt.clone();
        let mut delta = {
            let mut ip = Ipv4Packet::new_unchecked(&mut inc[..]);
            ip.set_src_addr_adjusted(wan)
        };
        let mut udp = UdpPacket::new_unchecked(&mut inc[hl..]);
        delta.update_word(sport, ext_port);
        udp.set_src_port(ext_port);
        udp.adjust_checksum(delta);
        prop_assert_eq!(udp.checksum(), 0);

        let mut full = pkt.clone();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut full[..]);
            ip.set_src_addr(wan);
            ip.fill_checksum();
        }
        let mut udp = UdpPacket::new_unchecked(&mut full[hl..]);
        udp.set_src_port(ext_port);
        // FullRecompute leaves a zero checksum alone (RFC 3022 §4.1).

        prop_assert_eq!(inc, full);
    }

    #[test]
    fn dscp_and_ttl_word_adjustments_match_recompute(
        src in arb_addr(),
        dst in arb_addr(),
        tos in any::<u8>(),
        new_tos in any::<u8>(),
        ttl in 1u8..255,
        new_ttl in 1u8..255,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // The DSCP/TOS octet shares header word 0 with version/IHL, and TTL
        // shares word 4 with the protocol number: RFC 1624 word updates must
        // handle both shared-word rewrites.
        let mut repr = Ipv4Repr::new(src, dst, Protocol::Udp);
        repr.ttl = ttl;
        let mut pkt = repr.emit_with_payload(&payload);
        pkt[1] = tos;
        Ipv4Packet::new_unchecked(&mut pkt[..]).fill_checksum();

        let mut inc = pkt.clone();
        let mut delta = ChecksumDelta::new();
        let old0 = u16::from_be_bytes([inc[0], inc[1]]);
        inc[1] = new_tos;
        delta.update_word(old0, u16::from_be_bytes([inc[0], inc[1]]));
        let old4 = u16::from_be_bytes([inc[8], inc[9]]);
        inc[8] = new_ttl;
        delta.update_word(old4, u16::from_be_bytes([inc[8], inc[9]]));
        let ck = delta.apply(u16::from_be_bytes([inc[10], inc[11]]));
        inc[10..12].copy_from_slice(&ck.to_be_bytes());

        let mut full = pkt.clone();
        full[1] = new_tos;
        full[8] = new_ttl;
        Ipv4Packet::new_unchecked(&mut full[..]).fill_checksum();

        prop_assert_eq!(inc, full);
    }

    #[test]
    fn crc32c_slicing_matches_bytewise_oracle(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        prop_assert_eq!(crc32c(&data), crc32c_bytewise(&data));
    }

    #[test]
    fn tcp_emit_onto_composes_identically_to_legacy_emit(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // The appending emit path (IP header, then segment in place) must
        // produce the same bytes as emitting the segment separately and
        // wrapping it.
        let tcp = TcpRepr::new(sport, dport, TcpFlags::ACK | TcpFlags::PSH);
        let ip = Ipv4Repr::new(src, dst, Protocol::Tcp);
        let legacy = ip.emit_with_payload(&tcp.emit_with_payload(src, dst, &payload));
        let mut onto = Vec::new();
        ip.emit_header_into(tcp.segment_len(payload.len()), &mut onto);
        tcp.emit_with_payload_onto(src, dst, &payload, &mut onto);
        prop_assert_eq!(legacy, onto);
    }

    #[test]
    fn parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Fuzz every parser entry point: errors are fine, panics are not.
        let _ = Ipv4Packet::new_checked(&data[..]);
        let _ = UdpPacket::new_checked(&data[..]);
        let _ = TcpPacket::new_checked(&data[..]);
        let _ = IcmpRepr::parse(&data);
        let _ = SctpRepr::parse(&data);
        let _ = DccpRepr::parse(&data, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        let _ = DnsMessage::parse(&data);
        let _ = DnsMessage::parse_tcp(&data);
        let _ = DhcpMessage::parse(&data);
        if let Ok(p) = Ipv4Packet::new_checked(&data[..]) {
            let _ = p.options();
        }
        if let Ok(p) = TcpPacket::new_checked(&data[..]) {
            let _ = p.options();
        }
    }
}
