//! Internet checksum (RFC 1071) and CRC-32c (RFC 4960 Appendix B).
//!
//! Correct checksum handling is itself one of the paper's measured
//! behaviors: Table 2 records devices (zy1, ls1) that fail to fix up the
//! checksums of transport headers *embedded in ICMP payloads*, and SCTP's
//! CRC-32c — which does not cover a network pseudo-header — is the reason
//! some NATs pass SCTP with a plain IP-address rewrite (§4.3).

use std::net::Ipv4Addr;

/// Computes the one's-complement Internet checksum over `data`.
///
/// Returns the value ready to be stored in a header checksum field (i.e.,
/// already complemented). Odd-length data is virtually zero-padded.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum(data, 0))
}

/// Running one's-complement sum, resumable via `acc`.
fn sum(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += (*last as u32) << 8;
    }
    acc
}

fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// The IPv4 pseudo-header sum used by UDP, TCP and DCCP checksums.
fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u32) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    let mut acc = 0u32;
    acc += u16::from_be_bytes([s[0], s[1]]) as u32;
    acc += u16::from_be_bytes([s[2], s[3]]) as u32;
    acc += u16::from_be_bytes([d[0], d[1]]) as u32;
    acc += u16::from_be_bytes([d[2], d[3]]) as u32;
    acc += protocol as u32;
    acc += length >> 16;
    acc += length & 0xFFFF;
    acc
}

/// Computes the checksum of a transport segment (`data` with its checksum
/// field zeroed) covered by the IPv4 pseudo-header.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, data: &[u8]) -> u16 {
    let acc = sum(data, pseudo_header_sum(src, dst, protocol, data.len() as u32));
    let folded = !fold(acc);
    // Per RFC 768, a transmitted UDP checksum of zero means "no checksum";
    // an all-zero result is sent as 0xFFFF instead. Harmless for TCP.
    if folded == 0 {
        0xFFFF
    } else {
        folded
    }
}

/// Verifies a transport segment whose checksum field is still in place.
pub fn verify_transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, data: &[u8]) -> bool {
    let acc = sum(data, pseudo_header_sum(src, dst, protocol, data.len() as u32));
    fold(acc) == 0xFFFF
}

/// CRC-32c (Castagnoli), as used by SCTP. Bit-reflected, table-driven.
pub fn crc32c(data: &[u8]) -> u32 {
    // Table generated at first use; 1 KiB, cheap.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Computes the SCTP packet checksum: CRC-32c over the packet with the
/// checksum field zeroed, stored little-endian per RFC 4960 — we return the
/// value to store with [`crate::field::write_u32`] big-endian, so we
/// byte-swap here.
pub fn sctp_checksum(packet_with_zeroed_checksum: &[u8]) -> u32 {
    crc32c(packet_with_zeroed_checksum).swap_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 0001 f203 f4f5 f6f7 → sum 0xddf2, checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_padded() {
        // 0x01 alone contributes 0x0100.
        assert_eq!(internet_checksum(&[0x01]), !0x0100);
    }

    #[test]
    fn checksum_of_data_with_own_checksum_verifies() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(fold(sum(&data, 0)), 0xFFFF);
    }

    #[test]
    fn transport_checksum_roundtrip() {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        // A fake UDP segment: ports 4000→53, len 12, zero checksum, 4 payload bytes.
        let mut seg = vec![0x0F, 0xA0, 0x00, 0x35, 0x00, 0x0C, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF];
        let ck = transport_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport_checksum(src, dst, 17, &seg));
        // Any single-byte corruption must break it.
        seg[9] ^= 0x01;
        assert!(!verify_transport_checksum(src, dst, 17, &seg));
    }

    #[test]
    fn transport_checksum_depends_on_addresses() {
        let seg = [0u8; 8];
        let a = transport_checksum(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 6, &seg);
        let b = transport_checksum(Ipv4Addr::new(1, 2, 3, 5), Ipv4Addr::new(5, 6, 7, 8), 6, &seg);
        assert_ne!(a, b, "pseudo-header must cover the source address");
    }

    #[test]
    fn crc32c_test_vectors() {
        // Well-known CRC-32c vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn sctp_checksum_is_address_independent() {
        // The property the paper leans on in §4.3: rewriting IP addresses
        // does not invalidate the SCTP checksum because it has no
        // pseudo-header. Trivially true by construction; assert the checksum
        // only depends on packet bytes.
        let pkt = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        assert_eq!(sctp_checksum(&pkt), sctp_checksum(&pkt));
    }
}
