//! Internet checksum (RFC 1071) and CRC-32c (RFC 4960 Appendix B).
//!
//! Correct checksum handling is itself one of the paper's measured
//! behaviors: Table 2 records devices (zy1, ls1) that fail to fix up the
//! checksums of transport headers *embedded in ICMP payloads*, and SCTP's
//! CRC-32c — which does not cover a network pseudo-header — is the reason
//! some NATs pass SCTP with a plain IP-address rewrite (§4.3).

use std::net::Ipv4Addr;

/// Computes the one's-complement Internet checksum over `data`.
///
/// Returns the value ready to be stored in a header checksum field (i.e.,
/// already complemented). Odd-length data is virtually zero-padded.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum(data, 0))
}

/// Running one's-complement sum, resumable via `acc`. Dispatches long
/// inputs to the wide-word path; `acc` and the result stay in the
/// big-endian 16-bit-pair space the scalar loop uses.
pub(crate) fn sum(data: &[u8], acc: u32) -> u32 {
    if data.len() < 64 {
        return sum_bytewise(data, acc);
    }
    sum_wide(data, acc)
}

/// The byte-pair reference loop: two bytes per step, big-endian pairs.
/// Used directly for short inputs and block tails, and kept as the
/// differential oracle the wide path is proven against (`wide_*` tests).
fn sum_bytewise(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += (*last as u32) << 8;
    }
    acc
}

/// Wide-word one's-complement sum: four independent u128 lanes each
/// folding u64 loads, 32 bytes per step — straight-line integer adds the
/// compiler auto-vectorizes. The lanes accumulate *little-endian* 16-bit
/// words (a `u64` native load on LE hardware); because the one's-complement
/// sum is byte-order independent (RFC 1071 §2.B), folding the LE total to
/// 16 bits and byte-swapping it yields exactly the big-endian pair sum the
/// scalar loop produces. The u128 lanes cannot overflow on any realistic
/// input (that would take ~2^57 bytes), so unlike the u32 scalar
/// accumulator this path is safe for arbitrarily large buffers.
fn sum_wide(data: &[u8], acc: u32) -> u32 {
    // Split at a multiple of 32 so every pair in the wide part sits at an
    // even offset (byte-swap equivalence needs intact pairs).
    let (wide, tail) = data.split_at(data.len() & !31);
    let (mut l0, mut l1, mut l2, mut l3) = (0u128, 0u128, 0u128, 0u128);
    for block in wide.chunks_exact(32) {
        l0 += u64::from_le_bytes(block[0..8].try_into().unwrap()) as u128;
        l1 += u64::from_le_bytes(block[8..16].try_into().unwrap()) as u128;
        l2 += u64::from_le_bytes(block[16..24].try_into().unwrap()) as u128;
        l3 += u64::from_le_bytes(block[24..32].try_into().unwrap()) as u128;
    }
    let le_total = fold_wide(l0 + l1 + l2 + l3);
    sum_bytewise(tail, acc + (le_total.swap_bytes() as u32))
}

/// Folds a wide one's-complement accumulator to 16 bits with end-around
/// carries.
fn fold_wide(mut acc: u128) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// An RFC 1624 incremental checksum update: the accumulated `~m + m'`
/// contributions of every 16-bit word that changed in the covered data.
///
/// NAT rewrites touch a handful of header words (addresses, ports, TTL)
/// inside segments that can carry 1460 bytes of payload; re-summing the
/// whole segment on every hop is the dominant per-frame cost. A delta
/// instead folds only the changed words into the stored checksum:
/// `HC' = ~(~HC + ~m + m')` (RFC 1624 eqn. 3, avoiding the RFC 1141
/// negative-zero bug). One delta can be applied to several checksums that
/// cover the same words — e.g. an address change patches both the IPv4
/// header checksum and the transport pseudo-header checksum.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChecksumDelta {
    acc: u32,
}

impl ChecksumDelta {
    /// An empty delta (applying it leaves a checksum unchanged).
    pub const fn new() -> ChecksumDelta {
        ChecksumDelta { acc: 0 }
    }

    /// Records a 16-bit word changing from `old` to `new`.
    pub fn update_word(&mut self, old: u16, new: u16) {
        self.acc += (!old) as u32 + new as u32;
    }

    /// Records a 32-bit (two-word) field changing from `old` to `new`.
    pub fn update_u32(&mut self, old: u32, new: u32) {
        self.update_word((old >> 16) as u16, (new >> 16) as u16);
        self.update_word(old as u16, new as u16);
    }

    /// Records an IPv4 address changing from `old` to `new`.
    pub fn update_addr(&mut self, old: Ipv4Addr, new: Ipv4Addr) {
        self.update_u32(u32::from(old), u32::from(new));
    }

    /// Applies the delta to a stored checksum value (e.g. the IPv4 header
    /// checksum). Bit-identical to zeroing the field and re-summing, for
    /// any packet whose stored checksum was produced by a full sum.
    pub fn apply(self, checksum: u16) -> u16 {
        !fold((!checksum) as u32 + self.acc)
    }

    /// Applies the delta to a stored *transport* checksum, reproducing the
    /// RFC 768 mapping of [`transport_checksum`]: an all-zero result is
    /// emitted as `0xFFFF`. Use for TCP and UDP checksum fields.
    pub fn apply_transport(self, checksum: u16) -> u16 {
        let ck = self.apply(checksum);
        if ck == 0 {
            0xFFFF
        } else {
            ck
        }
    }
}

/// One-shot RFC 1624 adjustment: patches `checksum` for a single 16-bit
/// word changing from `old` to `new`.
pub fn checksum_adjust(checksum: u16, old: u16, new: u16) -> u16 {
    let mut delta = ChecksumDelta::new();
    delta.update_word(old, new);
    delta.apply(checksum)
}

/// Appends `data` to `out` and returns its one's-complement byte-pair sum
/// in one fused pass — the bulk-path kernel that replaces "copy, then
/// re-read everything to checksum it".
///
/// The returned value is a running accumulator in the same big-endian
/// 16-bit-pair space as the rest of this module, computed as if `data`
/// started at an *even* byte offset (odd-length data is virtually
/// zero-padded, matching RFC 1071). Accumulators compose by addition;
/// a region appended at an odd offset contributes its sum byte-swapped
/// ([`swap_pair_sum`]) — the standard RFC 1071 §2.B identity. Finish a
/// composed transport sum with [`finish_transport_checksum`].
///
/// The wide path mirrors `internet_checksum`'s: four u128 lanes of u64
/// little-endian loads (32 bytes per step) with the copy interleaved per
/// block, proven against the copy-then-bytewise oracle in both unit tests
/// and proptests over odd lengths, chunk splits, and >64 KiB payloads.
pub fn copy_and_checksum(data: &[u8], out: &mut Vec<u8>) -> u32 {
    if data.len() < 64 {
        out.extend_from_slice(data);
        return sum_bytewise(data, 0);
    }
    out.reserve(data.len());
    let (wide, tail) = data.split_at(data.len() & !31);
    let (mut l0, mut l1, mut l2, mut l3) = (0u128, 0u128, 0u128, 0u128);
    for block in wide.chunks_exact(32) {
        l0 += u64::from_le_bytes(block[0..8].try_into().unwrap()) as u128;
        l1 += u64::from_le_bytes(block[8..16].try_into().unwrap()) as u128;
        l2 += u64::from_le_bytes(block[16..24].try_into().unwrap()) as u128;
        l3 += u64::from_le_bytes(block[24..32].try_into().unwrap()) as u128;
        out.extend_from_slice(block);
    }
    let acc = (fold_wide(l0 + l1 + l2 + l3).swap_bytes()) as u32;
    out.extend_from_slice(tail);
    sum_bytewise(tail, acc)
}

/// Byte-swaps a pair-space accumulator, re-aligning a sum computed at an
/// even offset for use at an odd offset (or vice versa) — RFC 1071 §2.B:
/// the one's-complement sum is byte-order independent, so shifting a
/// region's alignment by one byte exactly swaps the two sum bytes.
pub fn swap_pair_sum(acc: u32) -> u32 {
    fold(acc).swap_bytes() as u32
}

/// Folds a composed transport accumulator (pseudo-header + header +
/// payload sums) into the on-wire checksum field value, applying the
/// RFC 768 zero mapping (an all-zero result is transmitted as `0xFFFF`;
/// harmless for TCP).
pub fn finish_transport_checksum(acc: u32) -> u16 {
    let folded = !fold(acc);
    if folded == 0 {
        0xFFFF
    } else {
        folded
    }
}

/// The IPv4 pseudo-header sum used by UDP, TCP and DCCP checksums.
///
/// Public so single-pass emitters can compose it with
/// [`copy_and_checksum`] payload sums and finish with
/// [`finish_transport_checksum`] instead of re-reading the whole segment
/// through [`transport_checksum`].
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u32) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    let mut acc = 0u32;
    acc += u16::from_be_bytes([s[0], s[1]]) as u32;
    acc += u16::from_be_bytes([s[2], s[3]]) as u32;
    acc += u16::from_be_bytes([d[0], d[1]]) as u32;
    acc += u16::from_be_bytes([d[2], d[3]]) as u32;
    acc += protocol as u32;
    acc += length >> 16;
    acc += length & 0xFFFF;
    acc
}

/// Computes the checksum of a transport segment (`data` with its checksum
/// field zeroed) covered by the IPv4 pseudo-header.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, data: &[u8]) -> u16 {
    let acc = sum(data, pseudo_header_sum(src, dst, protocol, data.len() as u32));
    finish_transport_checksum(acc)
}

/// Verifies a transport segment whose checksum field is still in place.
pub fn verify_transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, data: &[u8]) -> bool {
    let acc = sum(data, pseudo_header_sum(src, dst, protocol, data.len() as u32));
    fold(acc) == 0xFFFF
}

/// Slicing-by-8 lookup tables: `TABLES[0]` is the classic bytewise table,
/// `TABLES[k]` advances a byte through `k` additional zero bytes. 8 KiB,
/// generated at first use.
fn crc32c_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 8]>> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for i in 0..256usize {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            }
            t[0][i] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// CRC-32c (Castagnoli), as used by SCTP. Bit-reflected, slicing-by-8:
/// eight bytes per step, each byte resolved through its own table so the
/// lookups have no serial dependency. [`crc32c_bytewise`] is the reference
/// implementation the tests check this against.
pub fn crc32c(data: &[u8]) -> u32 {
    let t = crc32c_tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The straightforward one-byte-per-step CRC-32c. Kept as the differential
/// oracle for [`crc32c`]; not used on any hot path.
pub fn crc32c_bytewise(data: &[u8]) -> u32 {
    let t = &crc32c_tables()[0];
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Computes the SCTP packet checksum: CRC-32c over the packet with the
/// checksum field zeroed, stored little-endian per RFC 4960 — we return the
/// value to store with [`crate::field::write_u32`] big-endian, so we
/// byte-swap here.
pub fn sctp_checksum(packet_with_zeroed_checksum: &[u8]) -> u32 {
    crc32c(packet_with_zeroed_checksum).swap_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 0001 f203 f4f5 f6f7 → sum 0xddf2, checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_padded() {
        // 0x01 alone contributes 0x0100.
        assert_eq!(internet_checksum(&[0x01]), !0x0100);
    }

    #[test]
    fn checksum_of_data_with_own_checksum_verifies() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(fold(sum(&data, 0)), 0xFFFF);
    }

    #[test]
    fn transport_checksum_roundtrip() {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        // A fake UDP segment: ports 4000→53, len 12, zero checksum, 4 payload bytes.
        let mut seg = vec![0x0F, 0xA0, 0x00, 0x35, 0x00, 0x0C, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF];
        let ck = transport_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport_checksum(src, dst, 17, &seg));
        // Any single-byte corruption must break it.
        seg[9] ^= 0x01;
        assert!(!verify_transport_checksum(src, dst, 17, &seg));
    }

    #[test]
    fn transport_checksum_depends_on_addresses() {
        let seg = [0u8; 8];
        let a = transport_checksum(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 6, &seg);
        let b = transport_checksum(Ipv4Addr::new(1, 2, 3, 5), Ipv4Addr::new(5, 6, 7, 8), 6, &seg);
        assert_ne!(a, b, "pseudo-header must cover the source address");
    }

    /// Overflow-proof reference checksum: the RFC 1071 byte-pair sum with
    /// a u64 accumulator, written independently of both production paths.
    fn oracle_checksum(data: &[u8]) -> u16 {
        let mut acc: u64 = 0;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            acc += u16::from_be_bytes([c[0], c[1]]) as u64;
        }
        if let [last] = chunks.remainder() {
            acc += (*last as u64) << 8;
        }
        while acc > 0xFFFF {
            acc = (acc & 0xFFFF) + (acc >> 16);
        }
        !(acc as u16)
    }

    /// Deterministic pseudo-random fill (no rand dependency).
    fn lcg_fill(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn wide_matches_bytewise_all_lengths_and_offsets() {
        // Every split phase around the 64-byte wide threshold and the
        // 32-byte block size, at every alignment and odd/even length.
        let data = lcg_fill(400, 7);
        for start in 0..8 {
            for len in 0..data.len() - start {
                let slice = &data[start..start + len];
                assert_eq!(
                    internet_checksum(slice),
                    oracle_checksum(slice),
                    "len={len} start={start}"
                );
                // The resumable form must agree for a nonzero running acc.
                assert_eq!(
                    fold(sum(slice, 0x1234)),
                    fold(sum_bytewise(slice, 0x1234)),
                    "resumed len={len} start={start}"
                );
            }
        }
    }

    #[test]
    fn wide_handles_all_ones_carry_cascades() {
        // All-0xFF input maximizes every lane and forces the longest
        // end-around carry chains through fold_wide.
        for len in [64, 65, 95, 96, 1460, 4096, 65535, 65536] {
            let data = vec![0xFFu8; len];
            assert_eq!(internet_checksum(&data), oracle_checksum(&data), "len={len}");
        }
        // A single 0x00FF word amid 0xFFFF words exercises partial carries.
        let mut data = vec![0xFFu8; 1460];
        data[730] = 0x00;
        assert_eq!(internet_checksum(&data), oracle_checksum(&data));
    }

    #[test]
    fn wide_matches_oracle_beyond_64k() {
        // Buffers past 64 KiB would overflow a u32 byte-pair accumulator
        // in the worst case; the wide path must stay exact.
        for (len, seed) in [(65_537, 1u64), (100_000, 2), (196_608, 3)] {
            let data = lcg_fill(len, seed);
            assert_eq!(internet_checksum(&data), oracle_checksum(&data), "len={len}");
        }
        let ones = vec![0xFFu8; 196_608];
        assert_eq!(internet_checksum(&ones), oracle_checksum(&ones));
    }

    #[test]
    fn wide_transport_checksum_matches_scalar_segment() {
        // The gateway-visible contract: a 1460-byte TCP segment's
        // pseudo-header checksum via the wide path equals the bytewise sum.
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        // Segment with the trailing checksum field zeroed, as on emission.
        let mut seg = lcg_fill(1460, 11);
        seg[1458] = 0;
        seg[1459] = 0;
        let wide = transport_checksum(src, dst, 6, &seg);
        let scalar = {
            let acc = sum_bytewise(&seg, pseudo_header_sum(src, dst, 6, seg.len() as u32));
            let folded = !fold(acc);
            if folded == 0 {
                0xFFFF
            } else {
                folded
            }
        };
        assert_eq!(wide, scalar);
        // And verification accepts the wide path's own emission.
        seg[1458..].copy_from_slice(&wide.to_be_bytes());
        assert!(verify_transport_checksum(src, dst, 6, &seg));
    }

    #[test]
    fn crc32c_test_vectors() {
        // Well-known CRC-32c vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn crc32c_matches_bytewise_oracle_all_lengths() {
        // Exercise every chunk remainder (0..8) and alignment phase.
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(167) ^ 0x5A) as u8).collect();
        for len in 0..data.len() {
            for start in 0..4.min(len + 1) {
                let slice = &data[start..len];
                assert_eq!(crc32c(slice), crc32c_bytewise(slice), "len={len} start={start}");
            }
        }
        assert_eq!(crc32c_bytewise(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn checksum_adjust_matches_full_recompute() {
        // An IPv4-like header: change one word, adjust vs re-sum.
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        // Rewrite the ident word 0x1234 -> 0xBEEF.
        let adjusted = checksum_adjust(ck, 0x1234, 0xBEEF);
        data[4..6].copy_from_slice(&0xBEEFu16.to_be_bytes());
        data[10..12].copy_from_slice(&[0, 0]);
        assert_eq!(adjusted, internet_checksum(&data));
    }

    #[test]
    fn delta_applies_to_transport_with_zero_mapping() {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let new_src = Ipv4Addr::new(10, 0, 1, 99);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        let mut seg = vec![0x0F, 0xA0, 0x00, 0x35, 0x00, 0x0C, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF];
        let ck = transport_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        // NAT-style rewrite: source address and port change together.
        let mut delta = ChecksumDelta::new();
        delta.update_addr(src, new_src);
        delta.update_word(0x0FA0, 61001);
        let adjusted = delta.apply_transport(ck);
        seg[0..2].copy_from_slice(&61001u16.to_be_bytes());
        seg[6..8].copy_from_slice(&[0, 0]);
        assert_eq!(adjusted, transport_checksum(new_src, dst, 17, &seg));
    }

    #[test]
    fn delta_word_to_all_ones_and_back() {
        // The RFC 1141 negative-zero trap: m = 0xFFFF and m' = 0x0000 are
        // both representations of one's-complement zero; eqn. 3 must still
        // agree with a full recompute in both directions.
        for (old_word, new_word) in [(0xFFFFu16, 0x0000u16), (0x0000, 0xFFFF)] {
            let mut data = vec![0x45, 0x00, 0, 0, 0, 0, 0, 0, 0x40, 0x06, 0x00, 0x00];
            data[4..6].copy_from_slice(&old_word.to_be_bytes());
            let ck = internet_checksum(&data);
            let adjusted = checksum_adjust(ck, old_word, new_word);
            data[4..6].copy_from_slice(&new_word.to_be_bytes());
            assert_eq!(adjusted, internet_checksum(&data), "{old_word:04x}->{new_word:04x}");
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        for ck in [0x0000u16, 0x1234, 0xFFFE] {
            assert_eq!(ChecksumDelta::new().apply(ck), ck);
        }
        // 0xFFFF stored: ~HC = 0, folds to 0, complements back to 0xFFFF.
        assert_eq!(ChecksumDelta::new().apply(0xFFFF), 0xFFFF);
    }

    /// Reference for the fused kernel: plain copy, then the independent
    /// u64 bytewise pair-sum (un-complemented, un-folded accumulator).
    fn copy_then_oracle_sum(data: &[u8], out: &mut Vec<u8>) -> u64 {
        out.extend_from_slice(data);
        let mut acc: u64 = 0;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            acc += u16::from_be_bytes([c[0], c[1]]) as u64;
        }
        if let [last] = chunks.remainder() {
            acc += (*last as u64) << 8;
        }
        acc
    }

    fn fold64(mut acc: u64) -> u16 {
        while acc > 0xFFFF {
            acc = (acc & 0xFFFF) + (acc >> 16);
        }
        acc as u16
    }

    #[test]
    fn copy_and_checksum_matches_copy_then_oracle_all_lengths() {
        // Every split phase around the 64-byte threshold and 32-byte block
        // size, at every alignment, odd and even lengths.
        let data = lcg_fill(400, 13);
        for start in 0..8 {
            for len in 0..data.len() - start {
                let slice = &data[start..start + len];
                let mut fused = vec![0xA5u8; 3]; // nonempty destination
                let mut plain = vec![0xA5u8; 3];
                let acc = copy_and_checksum(slice, &mut fused);
                let oracle = copy_then_oracle_sum(slice, &mut plain);
                assert_eq!(fused, plain, "copied bytes len={len} start={start}");
                assert_eq!(fold(acc), fold64(oracle), "sum len={len} start={start}");
            }
        }
    }

    #[test]
    fn copy_and_checksum_carry_cascades_and_large() {
        // All-0xFF maximizes lane carries; >64 KiB would overflow a u32
        // bytewise accumulator in the worst case.
        for len in [64usize, 65, 95, 1460, 65_537, 196_608] {
            let data = vec![0xFFu8; len];
            let (mut fused, mut plain) = (Vec::new(), Vec::new());
            let acc = copy_and_checksum(&data, &mut fused);
            let oracle = copy_then_oracle_sum(&data, &mut plain);
            assert_eq!(fused, plain, "len={len}");
            assert_eq!(fold(acc), fold64(oracle), "len={len}");
        }
    }

    #[test]
    fn chunked_copy_and_checksum_composes_with_parity_swap() {
        // Emulate the ByteQueue bulk path: the payload arrives as chunks
        // split at arbitrary (including odd) boundaries; per-chunk fused
        // sums composed with the RFC 1071 §2.B byte-swap identity must
        // equal the whole-payload checksum.
        let data = lcg_fill(10_000, 29);
        for splits in [vec![0], vec![1], vec![4096], vec![4095, 8191], vec![1, 2, 3, 5000]] {
            let mut out = Vec::new();
            let mut acc: u32 = 0;
            let mut prev = 0usize;
            let mut bounds = splits.clone();
            bounds.push(data.len());
            for b in bounds {
                let part = copy_and_checksum(&data[prev..b], &mut out);
                // A chunk starting at an odd offset contributes byte-swapped.
                acc += if prev.is_multiple_of(2) { part } else { swap_pair_sum(part) };
                prev = b;
            }
            assert_eq!(out, data, "splits={splits:?}");
            assert_eq!(fold(acc), fold(sum_bytewise(&data, 0)), "composed sum splits={splits:?}");
        }
    }

    #[test]
    fn finish_transport_checksum_matches_transport_checksum() {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        for len in [0usize, 1, 12, 1459, 1460] {
            let seg = lcg_fill(len, len as u64 + 1);
            let mut copied = Vec::new();
            let acc =
                copy_and_checksum(&seg, &mut copied) + pseudo_header_sum(src, dst, 6, len as u32);
            assert_eq!(
                finish_transport_checksum(acc),
                transport_checksum(src, dst, 6, &seg),
                "len={len}"
            );
        }
        // The RFC 768 zero mapping: an input folding to 0xFFFF complements
        // to zero and must be emitted as 0xFFFF.
        assert_eq!(finish_transport_checksum(0xFFFF), 0xFFFF);
        assert_eq!(finish_transport_checksum(0x0001_FFFE), 0xFFFF);
    }

    mod copy_and_checksum_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Fused copy+sum equals copy-then-bytewise-oracle for any
            /// payload, including odd lengths and >64 KiB buffers.
            #[test]
            fn matches_oracle(seed in any::<u64>(), len in 0usize..70_000) {
                let data = lcg_fill(len, seed);
                let (mut fused, mut plain) = (Vec::new(), Vec::new());
                let acc = copy_and_checksum(&data, &mut fused);
                let oracle = copy_then_oracle_sum(&data, &mut plain);
                prop_assert_eq!(fused, plain);
                prop_assert_eq!(fold(acc), fold64(oracle));
            }

            /// Splitting at any chunk boundary and composing with the
            /// parity-swap identity reproduces the unsplit sum.
            #[test]
            fn split_composes(seed in any::<u64>(), len in 2usize..20_000, cut in 0usize..20_000) {
                let data = lcg_fill(len, seed);
                let cut = cut % (len + 1);
                let mut out = Vec::new();
                let a = copy_and_checksum(&data[..cut], &mut out);
                let b = copy_and_checksum(&data[cut..], &mut out);
                let composed = a + if cut % 2 == 0 { b } else { swap_pair_sum(b) };
                prop_assert_eq!(&out, &data);
                prop_assert_eq!(fold(composed), fold(sum_bytewise(&data, 0)));
            }
        }
    }

    #[test]
    fn sctp_checksum_is_address_independent() {
        // The property the paper leans on in §4.3: rewriting IP addresses
        // does not invalidate the SCTP checksum because it has no
        // pseudo-header. Trivially true by construction; assert the checksum
        // only depends on packet bytes.
        let pkt = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        assert_eq!(sctp_checksum(&pkt), sctp_checksum(&pkt));
    }
}
