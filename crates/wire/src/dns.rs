//! DNS message codec (RFC 1035, the subset a home-gateway DNS proxy
//! touches): header, QDCOUNT questions, A/CNAME answers, name compression
//! on parse, and the 2-octet length framing used by DNS-over-TCP.
//!
//! The paper's DNS experiment (§3.2.3/§4.3) queries each gateway's DNS
//! proxy over TCP port 53 with `dig`; 14/34 accepted the connection, 10
//! answered, and one (ap) forwarded the query upstream over UDP.

use std::net::Ipv4Addr;

use crate::error::{WireError, WireResult};
use crate::field::{read_u16, read_u32, write_u16};

/// Maximum label length.
const MAX_LABEL: usize = 63;
/// Maximum encoded name length.
const MAX_NAME: usize = 255;

/// DNS record types used by the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Canonical name.
    Cname,
    /// Name server.
    Ns,
    /// Any other type (kept numeric).
    Other(u16),
}

impl RecordType {
    fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Other(c) => c,
        }
    }

    fn from_code(c: u16) -> RecordType {
        match c {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            other => RecordType::Other(other),
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Other code.
    Other(u8),
}

impl Rcode {
    fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::Other(c) => c,
        }
    }

    fn from_code(c: u8) -> Rcode {
        match c {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            other => Rcode::Other(other),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name, dotted form without trailing dot (e.g. `www.hiit.fi`).
    pub name: String,
    /// Queried record type.
    pub rtype: RecordType,
}

/// A resource record (answer/authority sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: String,
    /// Time to live, seconds.
    pub ttl: u32,
    /// The record data.
    pub data: RecordData,
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordData {
    /// An A record.
    A(Ipv4Addr),
    /// A CNAME record.
    Cname(String),
    /// Anything else, raw.
    Other {
        /// Numeric record type.
        rtype: u16,
        /// RDATA bytes.
        data: Vec<u8>,
    },
}

impl RecordData {
    fn rtype(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Other { rtype, .. } => RecordType::Other(*rtype),
        }
    }
}

/// A whole DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// True for responses, false for queries.
    pub is_response: bool,
    /// Recursion desired flag.
    pub recursion_desired: bool,
    /// Recursion available flag (responses).
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
}

impl DnsMessage {
    /// Builds a standard recursive query for an A record.
    pub fn query_a(id: u16, name: &str) -> DnsMessage {
        DnsMessage {
            id,
            is_response: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
            questions: vec![Question { name: name.to_string(), rtype: RecordType::A }],
            answers: Vec::new(),
        }
    }

    /// Builds a response to `query` with the given answers.
    pub fn response_to(query: &DnsMessage, answers: Vec<Record>, rcode: Rcode) -> DnsMessage {
        DnsMessage {
            id: query.id,
            is_response: true,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            rcode,
            questions: query.questions.clone(),
            answers,
        }
    }

    /// Encodes the message (UDP payload form, no TCP length prefix).
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; 12];
        write_u16(&mut buf, 0, self.id);
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.recursion_available {
            flags |= 0x0080;
        }
        flags |= self.rcode.code() as u16 & 0x000F;
        write_u16(&mut buf, 2, flags);
        write_u16(&mut buf, 4, self.questions.len() as u16);
        write_u16(&mut buf, 6, self.answers.len() as u16);
        for q in &self.questions {
            emit_name(&q.name, &mut buf);
            buf.extend_from_slice(&q.rtype.code().to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for r in &self.answers {
            emit_name(&r.name, &mut buf);
            buf.extend_from_slice(&r.data.rtype().code().to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes());
            buf.extend_from_slice(&r.ttl.to_be_bytes());
            match &r.data {
                RecordData::A(addr) => {
                    buf.extend_from_slice(&4u16.to_be_bytes());
                    buf.extend_from_slice(&addr.octets());
                }
                RecordData::Cname(target) => {
                    let mut rdata = Vec::new();
                    emit_name(target, &mut rdata);
                    buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
                    buf.extend_from_slice(&rdata);
                }
                RecordData::Other { data, .. } => {
                    buf.extend_from_slice(&(data.len() as u16).to_be_bytes());
                    buf.extend_from_slice(data);
                }
            }
        }
        buf
    }

    /// Encodes with the 2-octet length prefix used over TCP (RFC 1035 §4.2.2).
    pub fn emit_tcp(&self) -> Vec<u8> {
        let body = self.emit();
        let mut framed = Vec::with_capacity(body.len() + 2);
        framed.extend_from_slice(&(body.len() as u16).to_be_bytes());
        framed.extend_from_slice(&body);
        framed
    }

    /// Parses a message (UDP payload form).
    pub fn parse(data: &[u8]) -> WireResult<DnsMessage> {
        if data.len() < 12 {
            return Err(WireError::Truncated);
        }
        let id = read_u16(data, 0);
        let flags = read_u16(data, 2);
        let qdcount = read_u16(data, 4) as usize;
        let ancount = read_u16(data, 6) as usize;
        let mut off = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let (name, next) = parse_name(data, off)?;
            if data.len() < next + 4 {
                return Err(WireError::Truncated);
            }
            questions.push(Question { name, rtype: RecordType::from_code(read_u16(data, next)) });
            off = next + 4;
        }
        let mut answers = Vec::with_capacity(ancount);
        for _ in 0..ancount {
            let (name, next) = parse_name(data, off)?;
            if data.len() < next + 10 {
                return Err(WireError::Truncated);
            }
            let rtype = read_u16(data, next);
            let ttl = read_u32(data, next + 4);
            let rdlen = read_u16(data, next + 8) as usize;
            let rdata_start = next + 10;
            if data.len() < rdata_start + rdlen {
                return Err(WireError::Truncated);
            }
            let rdata = &data[rdata_start..rdata_start + rdlen];
            let record_data = match RecordType::from_code(rtype) {
                RecordType::A if rdlen == 4 => {
                    RecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
                }
                RecordType::Cname => {
                    let (target, _) = parse_name(data, rdata_start)?;
                    RecordData::Cname(target)
                }
                _ => RecordData::Other { rtype, data: rdata.to_vec() },
            };
            answers.push(Record { name, ttl, data: record_data });
            off = rdata_start + rdlen;
        }
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode: Rcode::from_code((flags & 0x000F) as u8),
            questions,
            answers,
        })
    }

    /// Parses a TCP-framed message; returns the message and octets consumed.
    pub fn parse_tcp(data: &[u8]) -> WireResult<(DnsMessage, usize)> {
        if data.len() < 2 {
            return Err(WireError::Truncated);
        }
        let len = read_u16(data, 0) as usize;
        if data.len() < 2 + len {
            return Err(WireError::Truncated);
        }
        Ok((DnsMessage::parse(&data[2..2 + len])?, 2 + len))
    }
}

fn emit_name(name: &str, out: &mut Vec<u8>) {
    if !name.is_empty() {
        for label in name.split('.') {
            let bytes = label.as_bytes();
            debug_assert!(!bytes.is_empty() && bytes.len() <= MAX_LABEL, "bad DNS label");
            out.push(bytes.len() as u8);
            out.extend_from_slice(bytes);
        }
    }
    out.push(0);
}

/// Parses a (possibly compressed) name at `off`; returns the name and the
/// offset just past it in the *original* position.
fn parse_name(data: &[u8], mut off: usize) -> WireResult<(String, usize)> {
    let mut name = String::new();
    let mut jumped = false;
    let mut after = off;
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > 128 || name.len() > MAX_NAME {
            return Err(WireError::Malformed); // compression loop
        }
        let len = *data.get(off).ok_or(WireError::Truncated)? as usize;
        if len == 0 {
            if !jumped {
                after = off + 1;
            }
            break;
        }
        if len & 0xC0 == 0xC0 {
            let b2 = *data.get(off + 1).ok_or(WireError::Truncated)? as usize;
            let ptr = ((len & 0x3F) << 8) | b2;
            if !jumped {
                after = off + 2;
                jumped = true;
            }
            if ptr >= off {
                return Err(WireError::Malformed); // forward pointer
            }
            off = ptr;
            continue;
        }
        if len > MAX_LABEL {
            return Err(WireError::Malformed);
        }
        let label = data.get(off + 1..off + 1 + len).ok_or(WireError::Truncated)?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(core::str::from_utf8(label).map_err(|_| WireError::Malformed)?);
        off += 1 + len;
    }
    Ok((name, after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query_a(0x1234, "www.hiit.fi");
        let parsed = DnsMessage::parse(&q.emit()).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn response_roundtrip_with_a_and_cname() {
        let q = DnsMessage::query_a(7, "mail.example.org");
        let resp = DnsMessage::response_to(
            &q,
            vec![
                Record {
                    name: "mail.example.org".into(),
                    ttl: 300,
                    data: RecordData::Cname("mx.example.org".into()),
                },
                Record {
                    name: "mx.example.org".into(),
                    ttl: 300,
                    data: RecordData::A(Ipv4Addr::new(93, 184, 216, 34)),
                },
            ],
            Rcode::NoError,
        );
        let parsed = DnsMessage::parse(&resp.emit()).unwrap();
        assert_eq!(parsed, resp);
        assert!(parsed.is_response);
        assert!(parsed.recursion_available);
    }

    #[test]
    fn nxdomain_roundtrip() {
        let q = DnsMessage::query_a(9, "nosuch.hiit.fi");
        let resp = DnsMessage::response_to(&q, vec![], Rcode::NxDomain);
        assert_eq!(DnsMessage::parse(&resp.emit()).unwrap().rcode, Rcode::NxDomain);
    }

    #[test]
    fn tcp_framing_roundtrip() {
        let q = DnsMessage::query_a(0xBEEF, "hiit.fi");
        let framed = q.emit_tcp();
        assert_eq!(read_u16(&framed, 0) as usize, framed.len() - 2);
        let (parsed, consumed) = DnsMessage::parse_tcp(&framed).unwrap();
        assert_eq!(parsed, q);
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn tcp_partial_frame_is_truncated() {
        let framed = DnsMessage::query_a(1, "a.b").emit_tcp();
        assert_eq!(DnsMessage::parse_tcp(&framed[..framed.len() - 1]), Err(WireError::Truncated));
        assert_eq!(DnsMessage::parse_tcp(&framed[..1]), Err(WireError::Truncated));
    }

    #[test]
    fn parses_compressed_names() {
        // Hand-built response with a compression pointer in the answer name.
        let q = DnsMessage::query_a(3, "ab.cd");
        let mut buf = q.emit();
        // ANCOUNT = 1
        buf[7] = 1;
        // Answer: pointer to offset 12 (the question name), type A, class IN,
        // TTL 60, RDLEN 4, 1.2.3.4.
        buf.extend_from_slice(&[0xC0, 12, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4]);
        let parsed = DnsMessage::parse(&buf).unwrap();
        assert_eq!(parsed.answers.len(), 1);
        assert_eq!(parsed.answers[0].name, "ab.cd");
        assert_eq!(parsed.answers[0].data, RecordData::A(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn rejects_pointer_loops() {
        // A name that points at itself.
        let mut buf = DnsMessage::query_a(3, "x").emit();
        let qname_off = 12;
        buf[qname_off] = 0xC0;
        buf[qname_off + 1] = qname_off as u8;
        assert!(DnsMessage::parse(&buf).is_err());
    }

    #[test]
    fn rejects_truncated_header() {
        assert_eq!(DnsMessage::parse(&[0u8; 5]), Err(WireError::Truncated));
    }

    #[test]
    fn root_name_emits_single_zero() {
        let mut out = Vec::new();
        emit_name("", &mut out);
        assert_eq!(out, vec![0]);
    }
}
