//! STUN codec (RFC 5389, Binding method) — the protocol behind the NAT
//! classification and traversal measurements the paper schedules as future
//! work (§5: "measuring the success rates of STUN, TURN and ICE").
//!
//! Implements Binding Request/Response with MAPPED-ADDRESS and
//! XOR-MAPPED-ADDRESS attributes, which is the subset a classification
//! client needs.

use std::net::{Ipv4Addr, SocketAddrV4};

use crate::error::{WireError, WireResult};
use crate::field::{read_u16, read_u32, write_u16, write_u32};

/// The RFC 5389 magic cookie.
pub const MAGIC_COOKIE: u32 = 0x2112_A442;
/// STUN header length.
pub const HEADER_LEN: usize = 20;

/// Message class+method combinations used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StunKind {
    /// Binding request (0x0001).
    BindingRequest,
    /// Binding success response (0x0101).
    BindingResponse,
    /// Binding error response (0x0111).
    BindingError,
}

impl StunKind {
    fn type_code(self) -> u16 {
        match self {
            StunKind::BindingRequest => 0x0001,
            StunKind::BindingResponse => 0x0101,
            StunKind::BindingError => 0x0111,
        }
    }

    fn from_code(c: u16) -> WireResult<StunKind> {
        Ok(match c {
            0x0001 => StunKind::BindingRequest,
            0x0101 => StunKind::BindingResponse,
            0x0111 => StunKind::BindingError,
            _ => return Err(WireError::Malformed),
        })
    }
}

/// A parsed STUN message (Binding method subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StunMessage {
    /// Class + method.
    pub kind: StunKind,
    /// 96-bit transaction id.
    pub transaction_id: [u8; 12],
    /// MAPPED-ADDRESS attribute (0x0001), if present.
    pub mapped_address: Option<SocketAddrV4>,
    /// XOR-MAPPED-ADDRESS attribute (0x0020), if present (already
    /// un-XORed).
    pub xor_mapped_address: Option<SocketAddrV4>,
}

impl StunMessage {
    /// A Binding request with the given transaction id.
    pub fn binding_request(transaction_id: [u8; 12]) -> StunMessage {
        StunMessage {
            kind: StunKind::BindingRequest,
            transaction_id,
            mapped_address: None,
            xor_mapped_address: None,
        }
    }

    /// A Binding success response reporting `mapped` via both attribute
    /// forms (as real servers do).
    pub fn binding_response(transaction_id: [u8; 12], mapped: SocketAddrV4) -> StunMessage {
        StunMessage {
            kind: StunKind::BindingResponse,
            transaction_id,
            mapped_address: Some(mapped),
            xor_mapped_address: Some(mapped),
        }
    }

    /// The address a client should trust: XOR-MAPPED-ADDRESS if present
    /// (immune to NATs that rewrite literal addresses in payloads), else
    /// MAPPED-ADDRESS.
    pub fn reported_address(&self) -> Option<SocketAddrV4> {
        self.xor_mapped_address.or(self.mapped_address)
    }

    /// Encodes the message.
    pub fn emit(&self) -> Vec<u8> {
        let mut attrs = Vec::new();
        if let Some(addr) = self.mapped_address {
            attrs.extend_from_slice(&0x0001u16.to_be_bytes());
            attrs.extend_from_slice(&8u16.to_be_bytes());
            attrs.push(0);
            attrs.push(0x01); // family IPv4
            attrs.extend_from_slice(&addr.port().to_be_bytes());
            attrs.extend_from_slice(&addr.ip().octets());
        }
        if let Some(addr) = self.xor_mapped_address {
            attrs.extend_from_slice(&0x0020u16.to_be_bytes());
            attrs.extend_from_slice(&8u16.to_be_bytes());
            attrs.push(0);
            attrs.push(0x01);
            let xport = addr.port() ^ (MAGIC_COOKIE >> 16) as u16;
            attrs.extend_from_slice(&xport.to_be_bytes());
            let xip = u32::from(*addr.ip()) ^ MAGIC_COOKIE;
            attrs.extend_from_slice(&xip.to_be_bytes());
        }
        let mut buf = vec![0u8; HEADER_LEN];
        write_u16(&mut buf, 0, self.kind.type_code());
        write_u16(&mut buf, 2, attrs.len() as u16);
        write_u32(&mut buf, 4, MAGIC_COOKIE);
        buf[8..20].copy_from_slice(&self.transaction_id);
        buf.extend_from_slice(&attrs);
        buf
    }

    /// Parses a message.
    pub fn parse(data: &[u8]) -> WireResult<StunMessage> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let type_code = read_u16(data, 0);
        if type_code & 0xC000 != 0 {
            return Err(WireError::Malformed); // top bits must be zero
        }
        let length = read_u16(data, 2) as usize;
        if read_u32(data, 4) != MAGIC_COOKIE {
            return Err(WireError::Malformed);
        }
        if data.len() < HEADER_LEN + length {
            return Err(WireError::Truncated);
        }
        let mut transaction_id = [0u8; 12];
        transaction_id.copy_from_slice(&data[8..20]);
        let mut msg = StunMessage {
            kind: StunKind::from_code(type_code)?,
            transaction_id,
            mapped_address: None,
            xor_mapped_address: None,
        };
        let mut attrs = &data[HEADER_LEN..HEADER_LEN + length];
        while attrs.len() >= 4 {
            let atype = read_u16(attrs, 0);
            let alen = read_u16(attrs, 2) as usize;
            if attrs.len() < 4 + alen {
                return Err(WireError::Truncated);
            }
            let value = &attrs[4..4 + alen];
            match atype {
                0x0001 if alen == 8 && value[1] == 0x01 => {
                    let port = read_u16(value, 2);
                    let ip = Ipv4Addr::from(read_u32(value, 4));
                    msg.mapped_address = Some(SocketAddrV4::new(ip, port));
                }
                0x0020 if alen == 8 && value[1] == 0x01 => {
                    let port = read_u16(value, 2) ^ (MAGIC_COOKIE >> 16) as u16;
                    let ip = Ipv4Addr::from(read_u32(value, 4) ^ MAGIC_COOKIE);
                    msg.xor_mapped_address = Some(SocketAddrV4::new(ip, port));
                }
                _ => {} // comprehension-optional attributes skipped
            }
            let padded = alen.div_ceil(4) * 4;
            attrs = &attrs[(4 + padded).min(attrs.len())..];
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TID: [u8; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

    #[test]
    fn request_roundtrip() {
        let req = StunMessage::binding_request(TID);
        let parsed = StunMessage::parse(&req.emit()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.kind, StunKind::BindingRequest);
    }

    #[test]
    fn response_roundtrip_both_attributes() {
        let mapped = SocketAddrV4::new(Ipv4Addr::new(10, 0, 1, 50), 45_678);
        let resp = StunMessage::binding_response(TID, mapped);
        let parsed = StunMessage::parse(&resp.emit()).unwrap();
        assert_eq!(parsed.mapped_address, Some(mapped));
        assert_eq!(parsed.xor_mapped_address, Some(mapped));
        assert_eq!(parsed.reported_address(), Some(mapped));
    }

    #[test]
    fn xor_encoding_obscures_literal_address() {
        // The reason XOR-MAPPED-ADDRESS exists: the literal bytes of the
        // address must not appear in the payload (some NATs rewrite them).
        let mapped = SocketAddrV4::new(Ipv4Addr::new(10, 0, 1, 50), 45_678);
        let wire = StunMessage::binding_response(TID, mapped).emit();
        let xor_attr = &wire[wire.len() - 8..];
        assert_ne!(&xor_attr[4..8], &mapped.ip().octets(), "address must be XORed");
    }

    #[test]
    fn rejects_bad_cookie_and_truncation() {
        let mut wire = StunMessage::binding_request(TID).emit();
        wire[4] ^= 0xFF;
        assert_eq!(StunMessage::parse(&wire), Err(WireError::Malformed));
        let wire = StunMessage::binding_request(TID).emit();
        assert_eq!(StunMessage::parse(&wire[..10]), Err(WireError::Truncated));
    }

    #[test]
    fn unknown_attributes_skipped() {
        let mut wire = StunMessage::binding_request(TID).emit();
        // Append a SOFTWARE (0x8022) attribute with 5 bytes (padded to 8).
        wire.extend_from_slice(&0x8022u16.to_be_bytes());
        wire.extend_from_slice(&5u16.to_be_bytes());
        wire.extend_from_slice(b"hgw\x00\x00\x00\x00\x00");
        let len = (wire.len() - HEADER_LEN) as u16;
        wire[2..4].copy_from_slice(&len.to_be_bytes());
        let parsed = StunMessage::parse(&wire).unwrap();
        assert_eq!(parsed.kind, StunKind::BindingRequest);
    }
}
