//! # hgw-wire — wire formats for the home-gateway testbed
//!
//! smoltcp-style packet codecs for every protocol the IMC 2010 home-gateway
//! study exercises: IPv4 (with options), UDP, TCP (with options), ICMPv4
//! (all of Table 2's message types), SCTP, DCCP, DNS (UDP and TCP framing)
//! and DHCP.
//!
//! Two layers per protocol, following smoltcp:
//!
//! * a checked **packet view** (`Ipv4Packet`, `UdpPacket`, `TcpPacket`) that
//!   reads/writes fields in place — what a NAT uses to rewrite headers, and
//! * a parsed **representation** (`*Repr`) that owns its fields — what
//!   endpoint stacks use.
//!
//! Checksums are first-class: the Internet checksum's pseudo-header
//! coverage (UDP/TCP/DCCP) versus SCTP's self-contained CRC-32c is the
//! mechanism behind one of the paper's most interesting findings (§4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod dccp;
pub mod dhcp;
pub mod dns;
pub mod error;
pub mod field;
pub mod icmp;
pub mod ip;
pub mod sctp;
pub mod stun;
pub mod tcp;
pub mod udp;

pub use checksum::{checksum_adjust, ChecksumDelta};
pub use error::{WireError, WireResult};
pub use ip::{Ipv4Packet, Ipv4Repr, Protocol};
pub use tcp::{SeqNumber, TcpFlags, TcpPacket, TcpRepr};
pub use udp::{UdpPacket, UdpRepr};
