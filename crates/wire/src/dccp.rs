//! DCCP codec (RFC 4340, generic header with 48-bit sequence numbers).
//!
//! §4.3: *no* gateway in the study passed DCCP. One mechanism behind that
//! result is directly visible in the wire format: unlike SCTP, DCCP's
//! checksum covers an IPv4 pseudo-header, so a NAT that rewrites the IP
//! source address without fixing the DCCP checksum produces a corrupt
//! packet that the peer must discard.

use std::net::Ipv4Addr;

use crate::checksum::{transport_checksum, verify_transport_checksum};
use crate::error::{WireError, WireResult};
use crate::field::{read_u16, read_u32, read_u48, write_u16, write_u48};
use crate::ip::Protocol;

/// Generic header length with extended (48-bit) sequence numbers.
pub const HEADER_LEN: usize = 16;
/// Length of the acknowledgment subheader (reserved + 48-bit ack).
pub const ACK_SUBHEADER_LEN: usize = 8;

/// DCCP packet types (RFC 4340 §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DccpType {
    /// Connection request.
    Request,
    /// Response to a request.
    Response,
    /// Pure data.
    Data,
    /// Pure acknowledgment.
    Ack,
    /// Data plus acknowledgment.
    DataAck,
    /// Close request (server asks client to close).
    CloseReq,
    /// Close.
    Close,
    /// Connection reset.
    Reset,
}

impl DccpType {
    fn code(self) -> u8 {
        match self {
            DccpType::Request => 0,
            DccpType::Response => 1,
            DccpType::Data => 2,
            DccpType::Ack => 3,
            DccpType::DataAck => 4,
            DccpType::CloseReq => 5,
            DccpType::Close => 6,
            DccpType::Reset => 7,
        }
    }

    fn from_code(code: u8) -> WireResult<DccpType> {
        Ok(match code {
            0 => DccpType::Request,
            1 => DccpType::Response,
            2 => DccpType::Data,
            3 => DccpType::Ack,
            4 => DccpType::DataAck,
            5 => DccpType::CloseReq,
            6 => DccpType::Close,
            7 => DccpType::Reset,
            _ => return Err(WireError::Malformed),
        })
    }

    /// Whether this packet type carries the acknowledgment subheader.
    pub fn has_ack(self) -> bool {
        !matches!(self, DccpType::Request | DccpType::Data)
    }

    /// Whether this packet type carries a service code.
    pub fn has_service_code(self) -> bool {
        matches!(self, DccpType::Request | DccpType::Response)
    }
}

/// A parsed DCCP packet (extended sequence numbers only, which is what
/// every real implementation sends for Request/Response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DccpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Packet type.
    pub packet_type: DccpType,
    /// 48-bit sequence number.
    pub seq: u64,
    /// 48-bit acknowledgment number (types with an ack subheader).
    pub ack: Option<u64>,
    /// Service code (Request/Response).
    pub service_code: Option<u32>,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl DccpRepr {
    /// Parses a packet, verifying the checksum under the pseudo-header.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> WireResult<DccpRepr> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if !verify_transport_checksum(src, dst, Protocol::Dccp.number(), data) {
            return Err(WireError::Checksum);
        }
        let ty = DccpType::from_code((data[8] >> 1) & 0x0F)?;
        let x = data[8] & 0x01;
        if x != 1 {
            // Short sequence numbers unsupported (never emitted here).
            return Err(WireError::Malformed);
        }
        let data_offset_words = data[4] as usize;
        let header_total = data_offset_words * 4;
        if header_total < HEADER_LEN || data.len() < header_total {
            return Err(WireError::Malformed);
        }
        let seq = read_u48(data, 10);
        let mut off = HEADER_LEN;
        let ack = if ty.has_ack() {
            if data.len() < off + ACK_SUBHEADER_LEN {
                return Err(WireError::Truncated);
            }
            let a = read_u48(data, off + 2);
            off += ACK_SUBHEADER_LEN;
            Some(a)
        } else {
            None
        };
        let service_code = if ty.has_service_code() {
            if data.len() < off + 4 {
                return Err(WireError::Truncated);
            }
            let s = read_u32(data, off);
            off += 4;
            Some(s)
        } else {
            None
        };
        if off != header_total {
            return Err(WireError::Malformed);
        }
        Ok(DccpRepr {
            src_port: read_u16(data, 0),
            dst_port: read_u16(data, 2),
            packet_type: ty,
            seq,
            ack,
            service_code,
            payload: data[header_total..].to_vec(),
        })
    }

    /// Builds the complete packet with a valid checksum under the given
    /// pseudo-header.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut header_len = HEADER_LEN;
        if self.packet_type.has_ack() {
            header_len += ACK_SUBHEADER_LEN;
        }
        if self.packet_type.has_service_code() {
            header_len += 4;
        }
        debug_assert_eq!(header_len % 4, 0);
        let mut buf = vec![0u8; header_len + self.payload.len()];
        write_u16(&mut buf, 0, self.src_port);
        write_u16(&mut buf, 2, self.dst_port);
        buf[4] = (header_len / 4) as u8; // data offset
        buf[5] = 0x00; // CCVal 0, CsCov 0 (checksum covers whole packet)
        buf[8] = (self.packet_type.code() << 1) | 0x01; // type + X=1
        write_u48(&mut buf, 10, self.seq);
        let mut off = HEADER_LEN;
        if let Some(ack) = self.ack {
            write_u48(&mut buf, off + 2, ack);
            off += ACK_SUBHEADER_LEN;
        } else {
            debug_assert!(!self.packet_type.has_ack(), "ack subheader required");
        }
        if let Some(sc) = self.service_code {
            buf[off..off + 4].copy_from_slice(&sc.to_be_bytes());
            off += 4;
        } else {
            debug_assert!(!self.packet_type.has_service_code());
        }
        buf[off..].copy_from_slice(&self.payload);
        let ck = transport_checksum(src, dst, Protocol::Dccp.number(), &buf);
        write_u16(&mut buf, 6, ck);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);

    #[test]
    fn request_roundtrip() {
        let repr = DccpRepr {
            src_port: 50000,
            dst_port: 5001,
            packet_type: DccpType::Request,
            seq: 0x0000_1234_5678_9ABC & 0xFFFF_FFFF_FFFF,
            ack: None,
            service_code: Some(0x6874_7470), // "http"
            payload: vec![],
        };
        let buf = repr.emit(SRC, DST);
        assert_eq!(DccpRepr::parse(&buf, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn response_and_ack_roundtrip() {
        let resp = DccpRepr {
            src_port: 5001,
            dst_port: 50000,
            packet_type: DccpType::Response,
            seq: 77,
            ack: Some(42),
            service_code: Some(1),
            payload: vec![],
        };
        assert_eq!(DccpRepr::parse(&resp.emit(SRC, DST), SRC, DST).unwrap(), resp);

        let ack = DccpRepr {
            src_port: 50000,
            dst_port: 5001,
            packet_type: DccpType::Ack,
            seq: 43,
            ack: Some(77),
            service_code: None,
            payload: vec![],
        };
        assert_eq!(DccpRepr::parse(&ack.emit(SRC, DST), SRC, DST).unwrap(), ack);
    }

    #[test]
    fn dataack_with_payload_roundtrip() {
        let repr = DccpRepr {
            src_port: 1,
            dst_port: 2,
            packet_type: DccpType::DataAck,
            seq: 100,
            ack: Some(99),
            service_code: None,
            payload: b"datagram congestion".to_vec(),
        };
        assert_eq!(DccpRepr::parse(&repr.emit(SRC, DST), SRC, DST).unwrap(), repr);
    }

    #[test]
    fn ip_rewrite_without_checksum_fixup_breaks_dccp() {
        // The emergent mechanism for the paper's "0/34 pass DCCP" result:
        // the pseudo-header makes an IP-only rewrite detectable.
        let repr = DccpRepr {
            src_port: 50000,
            dst_port: 5001,
            packet_type: DccpType::Request,
            seq: 5,
            ack: None,
            service_code: Some(1),
            payload: vec![],
        };
        let buf = repr.emit(SRC, DST);
        let rewritten_src = Ipv4Addr::new(10, 0, 1, 99);
        assert_eq!(DccpRepr::parse(&buf, rewritten_src, DST), Err(WireError::Checksum));
    }

    #[test]
    fn rejects_truncated_and_bad_type() {
        assert_eq!(DccpRepr::parse(&[0u8; 8], SRC, DST), Err(WireError::Truncated));
        let repr = DccpRepr {
            src_port: 1,
            dst_port: 2,
            packet_type: DccpType::Data,
            seq: 1,
            ack: None,
            service_code: None,
            payload: vec![],
        };
        let mut buf = repr.emit(SRC, DST);
        buf[8] = (9 << 1) | 1; // type 9 invalid
        let ck = transport_checksum(SRC, DST, Protocol::Dccp.number(), &{
            let mut b = buf.clone();
            b[6] = 0;
            b[7] = 0;
            b
        });
        write_u16(&mut buf, 6, ck);
        assert_eq!(DccpRepr::parse(&buf, SRC, DST), Err(WireError::Malformed));
    }

    #[test]
    fn close_sequence_roundtrip() {
        for ty in [DccpType::CloseReq, DccpType::Close, DccpType::Reset] {
            let repr = DccpRepr {
                src_port: 9,
                dst_port: 10,
                packet_type: ty,
                seq: 1000,
                ack: Some(2000),
                service_code: None,
                payload: vec![],
            };
            assert_eq!(DccpRepr::parse(&repr.emit(SRC, DST), SRC, DST).unwrap(), repr);
        }
    }
}
