//! ICMPv4 codec (RFC 792) covering every message type in Table 2 of the
//! paper.
//!
//! Error messages carry the *invoking packet* — the IP header plus at least
//! the first 8 octets of the offending datagram. Whether a NAT correctly
//! finds, rewrites and re-checksums the transport header inside that
//! payload is precisely what the paper's ICMP experiment measures.

use crate::checksum::internet_checksum;
use crate::error::{WireError, WireResult};
use crate::field::{read_u16, write_u16};

/// Destination Unreachable codes (type 3) probed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnreachCode {
    /// Code 0.
    NetUnreachable,
    /// Code 1.
    HostUnreachable,
    /// Code 2.
    ProtoUnreachable,
    /// Code 3.
    PortUnreachable,
    /// Code 4 — "fragmentation needed and DF set"; carries the next-hop MTU
    /// and is what PMTU discovery depends on (RFC 1191).
    FragNeeded,
    /// Code 5.
    SourceRouteFailed,
    /// Any other code.
    Other(u8),
}

impl UnreachCode {
    /// Wire code value.
    pub fn code(self) -> u8 {
        match self {
            UnreachCode::NetUnreachable => 0,
            UnreachCode::HostUnreachable => 1,
            UnreachCode::ProtoUnreachable => 2,
            UnreachCode::PortUnreachable => 3,
            UnreachCode::FragNeeded => 4,
            UnreachCode::SourceRouteFailed => 5,
            UnreachCode::Other(c) => c,
        }
    }
}

impl From<u8> for UnreachCode {
    fn from(c: u8) -> UnreachCode {
        match c {
            0 => UnreachCode::NetUnreachable,
            1 => UnreachCode::HostUnreachable,
            2 => UnreachCode::ProtoUnreachable,
            3 => UnreachCode::PortUnreachable,
            4 => UnreachCode::FragNeeded,
            5 => UnreachCode::SourceRouteFailed,
            other => UnreachCode::Other(other),
        }
    }
}

/// Time Exceeded codes (type 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeExceededCode {
    /// Code 0: TTL exceeded in transit.
    TtlExceeded,
    /// Code 1: fragment reassembly time exceeded.
    ReassemblyExceeded,
}

/// A parsed ICMPv4 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpRepr {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier (used like a "port" by NATs translating ICMP query
        /// messages).
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Destination unreachable (type 3).
    DestUnreachable {
        /// The specific code.
        code: UnreachCode,
        /// Next-hop MTU; only meaningful for [`UnreachCode::FragNeeded`].
        mtu: u16,
        /// The invoking packet: original IP header + ≥8 payload octets.
        invoking: Vec<u8>,
    },
    /// Time exceeded (type 11).
    TimeExceeded {
        /// TTL or reassembly.
        code: TimeExceededCode,
        /// The invoking packet.
        invoking: Vec<u8>,
    },
    /// Parameter problem (type 12).
    ParamProblem {
        /// Octet offset of the problem.
        pointer: u8,
        /// The invoking packet.
        invoking: Vec<u8>,
    },
    /// Source quench (type 4, deprecated but probed by the paper).
    SourceQuench {
        /// The invoking packet.
        invoking: Vec<u8>,
    },
}

impl IcmpRepr {
    /// True for error messages (those that embed an invoking packet).
    pub fn is_error(&self) -> bool {
        !matches!(self, IcmpRepr::EchoRequest { .. } | IcmpRepr::EchoReply { .. })
    }

    /// The embedded invoking packet of an error message.
    pub fn invoking(&self) -> Option<&[u8]> {
        match self {
            IcmpRepr::DestUnreachable { invoking, .. }
            | IcmpRepr::TimeExceeded { invoking, .. }
            | IcmpRepr::ParamProblem { invoking, .. }
            | IcmpRepr::SourceQuench { invoking } => Some(invoking),
            _ => None,
        }
    }

    /// Mutable access to the embedded invoking packet.
    pub fn invoking_mut(&mut self) -> Option<&mut Vec<u8>> {
        match self {
            IcmpRepr::DestUnreachable { invoking, .. }
            | IcmpRepr::TimeExceeded { invoking, .. }
            | IcmpRepr::ParamProblem { invoking, .. }
            | IcmpRepr::SourceQuench { invoking } => Some(invoking),
            _ => None,
        }
    }

    /// Parses an ICMP message, verifying the checksum.
    pub fn parse(data: &[u8]) -> WireResult<IcmpRepr> {
        if data.len() < 8 {
            return Err(WireError::Truncated);
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::Checksum);
        }
        let ty = data[0];
        let code = data[1];
        let rest = &data[8..];
        match ty {
            0 | 8 => {
                let ident = read_u16(data, 4);
                let seq = read_u16(data, 6);
                let payload = rest.to_vec();
                Ok(if ty == 8 {
                    IcmpRepr::EchoRequest { ident, seq, payload }
                } else {
                    IcmpRepr::EchoReply { ident, seq, payload }
                })
            }
            3 => Ok(IcmpRepr::DestUnreachable {
                code: UnreachCode::from(code),
                mtu: read_u16(data, 6),
                invoking: rest.to_vec(),
            }),
            4 => Ok(IcmpRepr::SourceQuench { invoking: rest.to_vec() }),
            11 => Ok(IcmpRepr::TimeExceeded {
                code: if code == 1 {
                    TimeExceededCode::ReassemblyExceeded
                } else {
                    TimeExceededCode::TtlExceeded
                },
                invoking: rest.to_vec(),
            }),
            12 => Ok(IcmpRepr::ParamProblem { pointer: data[4], invoking: rest.to_vec() }),
            _ => Err(WireError::Malformed),
        }
    }

    /// Builds the complete message with a valid checksum.
    pub fn emit(&self) -> Vec<u8> {
        let (ty, code, word, body): (u8, u8, [u8; 4], &[u8]) = match self {
            IcmpRepr::EchoRequest { ident, seq, payload } => {
                let mut w = [0u8; 4];
                w[..2].copy_from_slice(&ident.to_be_bytes());
                w[2..].copy_from_slice(&seq.to_be_bytes());
                (8, 0, w, payload)
            }
            IcmpRepr::EchoReply { ident, seq, payload } => {
                let mut w = [0u8; 4];
                w[..2].copy_from_slice(&ident.to_be_bytes());
                w[2..].copy_from_slice(&seq.to_be_bytes());
                (0, 0, w, payload)
            }
            IcmpRepr::DestUnreachable { code, mtu, invoking } => {
                let mut w = [0u8; 4];
                w[2..].copy_from_slice(&mtu.to_be_bytes());
                (3, code.code(), w, invoking)
            }
            IcmpRepr::SourceQuench { invoking } => (4, 0, [0; 4], invoking),
            IcmpRepr::TimeExceeded { code, invoking } => {
                let c = match code {
                    TimeExceededCode::TtlExceeded => 0,
                    TimeExceededCode::ReassemblyExceeded => 1,
                };
                (11, c, [0; 4], invoking)
            }
            IcmpRepr::ParamProblem { pointer, invoking } => (12, 0, [*pointer, 0, 0, 0], invoking),
        };
        let mut buf = vec![0u8; 8 + body.len()];
        buf[0] = ty;
        buf[1] = code;
        buf[4..8].copy_from_slice(&word);
        buf[8..].copy_from_slice(body);
        let ck = internet_checksum(&buf);
        write_u16(&mut buf, 2, ck);
        buf
    }

    /// A short human-readable name matching the column labels of Table 2.
    pub fn kind_name(&self) -> &'static str {
        match self {
            IcmpRepr::EchoRequest { .. } => "Echo Request",
            IcmpRepr::EchoReply { .. } => "Echo Reply",
            IcmpRepr::DestUnreachable { code, .. } => match code {
                UnreachCode::NetUnreachable => "Net Unreach.",
                UnreachCode::HostUnreachable => "Host Unreach.",
                UnreachCode::ProtoUnreachable => "Proto. Unreach.",
                UnreachCode::PortUnreachable => "Port Unreach.",
                UnreachCode::FragNeeded => "Frag. Needed",
                UnreachCode::SourceRouteFailed => "Src. Route Fail.",
                UnreachCode::Other(_) => "Dest. Unreach.",
            },
            IcmpRepr::TimeExceeded { code: TimeExceededCode::TtlExceeded, .. } => "TTL Exceeded",
            IcmpRepr::TimeExceeded { code: TimeExceededCode::ReassemblyExceeded, .. } => {
                "Reass. Time Ex."
            }
            IcmpRepr::ParamProblem { .. } => "Param. Prob.",
            IcmpRepr::SourceQuench { .. } => "Source Quench",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoking_stub() -> Vec<u8> {
        // A plausible 20-byte IP header + 8 transport octets.
        let mut v = vec![0x45u8; 1];
        v.extend_from_slice(&[0; 27]);
        v
    }

    #[test]
    fn echo_roundtrip() {
        let msg = IcmpRepr::EchoRequest { ident: 0x1234, seq: 7, payload: b"ping".to_vec() };
        let buf = msg.emit();
        assert_eq!(IcmpRepr::parse(&buf).unwrap(), msg);
        let reply = IcmpRepr::EchoReply { ident: 0x1234, seq: 7, payload: b"ping".to_vec() };
        assert_eq!(IcmpRepr::parse(&reply.emit()).unwrap(), reply);
    }

    #[test]
    fn every_error_kind_roundtrips() {
        let inv = invoking_stub();
        let messages = vec![
            IcmpRepr::DestUnreachable {
                code: UnreachCode::NetUnreachable,
                mtu: 0,
                invoking: inv.clone(),
            },
            IcmpRepr::DestUnreachable {
                code: UnreachCode::HostUnreachable,
                mtu: 0,
                invoking: inv.clone(),
            },
            IcmpRepr::DestUnreachable {
                code: UnreachCode::ProtoUnreachable,
                mtu: 0,
                invoking: inv.clone(),
            },
            IcmpRepr::DestUnreachable {
                code: UnreachCode::PortUnreachable,
                mtu: 0,
                invoking: inv.clone(),
            },
            IcmpRepr::DestUnreachable {
                code: UnreachCode::FragNeeded,
                mtu: 576,
                invoking: inv.clone(),
            },
            IcmpRepr::DestUnreachable {
                code: UnreachCode::SourceRouteFailed,
                mtu: 0,
                invoking: inv.clone(),
            },
            IcmpRepr::TimeExceeded { code: TimeExceededCode::TtlExceeded, invoking: inv.clone() },
            IcmpRepr::TimeExceeded {
                code: TimeExceededCode::ReassemblyExceeded,
                invoking: inv.clone(),
            },
            IcmpRepr::ParamProblem { pointer: 9, invoking: inv.clone() },
            IcmpRepr::SourceQuench { invoking: inv.clone() },
        ];
        for msg in messages {
            let buf = msg.emit();
            let parsed = IcmpRepr::parse(&buf).unwrap();
            assert_eq!(parsed, msg, "roundtrip failed for {}", msg.kind_name());
            assert!(parsed.is_error());
            assert_eq!(parsed.invoking(), Some(&inv[..]));
        }
    }

    #[test]
    fn frag_needed_carries_mtu() {
        let msg = IcmpRepr::DestUnreachable {
            code: UnreachCode::FragNeeded,
            mtu: 1400,
            invoking: invoking_stub(),
        };
        match IcmpRepr::parse(&msg.emit()).unwrap() {
            IcmpRepr::DestUnreachable { code: UnreachCode::FragNeeded, mtu, .. } => {
                assert_eq!(mtu, 1400)
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = IcmpRepr::SourceQuench { invoking: invoking_stub() }.emit();
        buf[12] ^= 0x01;
        assert_eq!(IcmpRepr::parse(&buf), Err(WireError::Checksum));
    }

    #[test]
    fn rejects_unknown_type_and_short_buffer() {
        let mut buf = IcmpRepr::SourceQuench { invoking: invoking_stub() }.emit();
        buf[0] = 42;
        let ck = internet_checksum(&{
            let mut b = buf.clone();
            b[2] = 0;
            b[3] = 0;
            b
        });
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(IcmpRepr::parse(&buf), Err(WireError::Malformed));
        assert_eq!(IcmpRepr::parse(&[0u8; 4]), Err(WireError::Truncated));
    }

    #[test]
    fn invoking_mut_allows_nat_rewrite() {
        let mut msg = IcmpRepr::DestUnreachable {
            code: UnreachCode::PortUnreachable,
            mtu: 0,
            invoking: invoking_stub(),
        };
        msg.invoking_mut().unwrap()[12] = 99;
        assert_eq!(msg.invoking().unwrap()[12], 99);
        let echo = IcmpRepr::EchoRequest { ident: 1, seq: 1, payload: vec![] };
        assert!(matches!(echo, IcmpRepr::EchoRequest { .. }));
    }

    #[test]
    fn unreach_code_conversion_total() {
        for c in 0..=10u8 {
            assert_eq!(UnreachCode::from(c).code(), c);
        }
    }
}
