//! UDP header codec (RFC 768).

use std::net::Ipv4Addr;

use crate::checksum::{transport_checksum, verify_transport_checksum, ChecksumDelta};
use crate::error::{WireError, WireResult};
use crate::field::{read_u16, write_u16};
use crate::ip::Protocol;

/// Fixed UDP header length.
pub const HEADER_LEN: usize = 8;

mod field {
    pub const SRC_PORT: usize = 0;
    pub const DST_PORT: usize = 2;
    pub const LENGTH: usize = 4;
    pub const CHECKSUM: usize = 6;
}

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> UdpPacket<T> {
        UdpPacket { buffer }
    }

    /// Wraps a buffer, validating lengths.
    pub fn new_checked(buffer: T) -> WireResult<UdpPacket<T>> {
        let packet = UdpPacket::new_unchecked(buffer);
        let buf = packet.buffer.as_ref();
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = packet.len_field();
        if len < HEADER_LEN || buf.len() < len {
            return Err(WireError::Truncated);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// The length field (header + payload).
    pub fn len_field(&self) -> usize {
        read_u16(self.buffer.as_ref(), field::LENGTH) as usize
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Payload bytes, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field()]
    }

    /// Verifies the checksum under the given pseudo-header addresses. A
    /// transmitted checksum of zero means "not computed" and verifies.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let seg = &self.buffer.as_ref()[..self.len_field()];
        verify_transport_checksum(src, dst, Protocol::Udp.number(), seg)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpPacket<T> {
    /// Sets the source port (checksum not updated).
    pub fn set_src_port(&mut self, port: u16) {
        write_u16(self.buffer.as_mut(), field::SRC_PORT, port);
    }

    /// Sets the destination port (checksum not updated).
    pub fn set_dst_port(&mut self, port: u16) {
        write_u16(self.buffer.as_mut(), field::DST_PORT, port);
    }

    /// Sets the source port and incrementally patches the checksum per
    /// RFC 1624. A stored checksum of zero means "not computed" (RFC 768)
    /// and is left untouched.
    pub fn set_src_port_adjusted(&mut self, port: u16) {
        let old = self.src_port();
        self.set_src_port(port);
        let mut delta = ChecksumDelta::new();
        delta.update_word(old, port);
        self.adjust_checksum(delta);
    }

    /// Sets the destination port and incrementally patches the checksum
    /// (zero checksum left untouched).
    pub fn set_dst_port_adjusted(&mut self, port: u16) {
        let old = self.dst_port();
        self.set_dst_port(port);
        let mut delta = ChecksumDelta::new();
        delta.update_word(old, port);
        self.adjust_checksum(delta);
    }

    /// Applies a checksum delta for covered words that changed *outside*
    /// this datagram — the pseudo-header addresses a NAT rewrites. A stored
    /// checksum of zero means "not computed" and is left untouched; a
    /// folded-to-zero result is stored as `0xFFFF` like
    /// [`UdpPacket::fill_checksum`] would.
    pub fn adjust_checksum(&mut self, delta: ChecksumDelta) {
        let ck = self.checksum();
        if ck == 0 {
            return;
        }
        write_u16(self.buffer.as_mut(), field::CHECKSUM, delta.apply_transport(ck));
    }

    /// Recomputes the checksum under the given pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = self.len_field();
        write_u16(self.buffer.as_mut(), field::CHECKSUM, 0);
        let ck = transport_checksum(src, dst, Protocol::Udp.number(), &self.buffer.as_ref()[..len]);
        write_u16(self.buffer.as_mut(), field::CHECKSUM, ck);
    }
}

/// A parsed, owned UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parses a datagram view, verifying the checksum.
    pub fn parse<T: AsRef<[u8]>>(
        packet: &UdpPacket<T>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> WireResult<UdpRepr> {
        if !packet.verify_checksum(src, dst) {
            return Err(WireError::Checksum);
        }
        Ok(UdpRepr { src_port: packet.src_port(), dst_port: packet.dst_port() })
    }

    /// Builds the complete datagram (header + payload) with a valid
    /// checksum under the given pseudo-header.
    pub fn emit_with_payload(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        assert!(total <= u16::MAX as usize, "UDP datagram too large");
        let mut buf = vec![0u8; total];
        write_u16(&mut buf, field::SRC_PORT, self.src_port);
        write_u16(&mut buf, field::DST_PORT, self.dst_port);
        write_u16(&mut buf, field::LENGTH, total as u16);
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut packet = UdpPacket::new_unchecked(&mut buf[..]);
        packet.fill_checksum(src, dst);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);

    #[test]
    fn emit_parse_roundtrip() {
        let repr = UdpRepr { src_port: 4000, dst_port: 53 };
        let buf = repr.emit_with_payload(SRC, DST, b"query");
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), b"query");
        assert_eq!(UdpRepr::parse(&packet, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn checksum_breaks_on_nat_rewrite_without_fixup() {
        // This is the exact failure mode a NAT must handle: rewriting the
        // source address invalidates the pseudo-header checksum.
        let buf = UdpRepr { src_port: 4000, dst_port: 53 }.emit_with_payload(SRC, DST, b"x");
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert!(!packet.verify_checksum(Ipv4Addr::new(10, 0, 1, 99), DST));
    }

    #[test]
    fn rewrite_and_fix_checksum() {
        let buf = UdpRepr { src_port: 4000, dst_port: 53 }.emit_with_payload(SRC, DST, b"x");
        let mut packet = UdpPacket::new_unchecked(buf);
        packet.set_src_port(61001);
        let ext = Ipv4Addr::new(10, 0, 1, 99);
        packet.fill_checksum(ext, DST);
        assert!(packet.verify_checksum(ext, DST));
        assert_eq!(packet.src_port(), 61001);
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = UdpRepr { src_port: 1, dst_port: 2 }.emit_with_payload(SRC, DST, &[]);
        buf[6] = 0;
        buf[7] = 0;
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_truncation() {
        let buf = UdpRepr { src_port: 1, dst_port: 2 }.emit_with_payload(SRC, DST, b"abcdef");
        assert!(UdpPacket::new_checked(&buf[..buf.len() - 3]).is_err());
        assert!(UdpPacket::new_checked(&buf[..4]).is_err());
    }

    #[test]
    fn corrupt_payload_fails_parse() {
        let mut buf = UdpRepr { src_port: 1, dst_port: 2 }.emit_with_payload(SRC, DST, b"abcdef");
        buf[10] ^= 0x40;
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(UdpRepr::parse(&packet, SRC, DST), Err(WireError::Checksum));
    }
}
