//! IPv4 header codec, smoltcp-style: a checked [`Ipv4Packet`] view over a
//! byte buffer plus a parsed, owned [`Ipv4Repr`].
//!
//! Supports header options (the paper probes "Record Route" handling and
//! notes that IP options cause failures in many middleboxes), TTL
//! manipulation (some gateways fail to decrement it), and full checksum
//! generation/verification.

use std::net::Ipv4Addr;

use crate::checksum::{checksum_adjust, internet_checksum, ChecksumDelta};
use crate::error::{WireError, WireResult};
use crate::field::{read_u16, write_u16};

/// An IP protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// DCCP (33).
    Dccp,
    /// SCTP (132).
    Sctp,
    /// Anything else.
    Unknown(u8),
}

impl Protocol {
    /// The wire value.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Dccp => 33,
            Protocol::Sctp => 132,
            Protocol::Unknown(n) => n,
        }
    }
}

impl From<u8> for Protocol {
    fn from(n: u8) -> Protocol {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            33 => Protocol::Dccp,
            132 => Protocol::Sctp,
            other => Protocol::Unknown(other),
        }
    }
}

impl core::fmt::Display for Protocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Dccp => write!(f, "DCCP"),
            Protocol::Sctp => write!(f, "SCTP"),
            Protocol::Unknown(n) => write!(f, "proto-{n}"),
        }
    }
}

/// One parsed IPv4 option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ipv4Option {
    /// End of option list (type 0); terminates parsing.
    EndOfList,
    /// No-operation padding (type 1).
    NoOp,
    /// Record Route (type 7): pointer and room for recorded addresses.
    RecordRoute {
        /// 1-based octet pointer to the next free slot.
        pointer: u8,
        /// Recorded route data (the option body after the pointer).
        data: Vec<u8>,
    },
    /// Any other option, kept as raw (type, data).
    Other {
        /// Option type octet.
        kind: u8,
        /// Option body (without type/length octets).
        data: Vec<u8>,
    },
}

impl Ipv4Option {
    /// Encoded length in octets.
    pub fn wire_len(&self) -> usize {
        match self {
            Ipv4Option::EndOfList | Ipv4Option::NoOp => 1,
            Ipv4Option::RecordRoute { data, .. } => 3 + data.len(),
            Ipv4Option::Other { data, .. } => 2 + data.len(),
        }
    }
}

/// Record Route option type.
pub const OPT_RECORD_ROUTE: u8 = 7;

mod field {
    pub const VER_IHL: usize = 0;
    pub const TOS: usize = 1;
    pub const LENGTH: usize = 2;
    pub const IDENT: usize = 4;
    pub const FLAGS_FRAG: usize = 6;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: usize = 10;
    pub const SRC_ADDR: usize = 12;
    pub const DST_ADDR: usize = 16;
    pub const OPTIONS: usize = 20;
}

/// A read/write view of an IPv4 packet in a byte buffer.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> WireResult<Ipv4Packet<T>> {
        let packet = Ipv4Packet::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    fn check_len(&self) -> WireResult<()> {
        let buf = self.buffer.as_ref();
        if buf.len() < field::OPTIONS {
            return Err(WireError::Truncated);
        }
        if self.version() != 4 {
            return Err(WireError::Malformed);
        }
        let hl = self.header_len();
        if hl < field::OPTIONS || buf.len() < hl {
            return Err(WireError::Malformed);
        }
        let total = self.total_len();
        if total < hl || buf.len() < total {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in octets (IHL × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[field::VER_IHL] & 0x0F) as usize) * 4
    }

    /// Type-of-service octet.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[field::TOS]
    }

    /// Total packet length in octets.
    pub fn total_len(&self) -> usize {
        read_u16(self.buffer.as_ref(), field::LENGTH) as usize
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::IDENT)
    }

    /// Don't Fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG] & 0x40 != 0
    }

    /// More Fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG] & 0x20 != 0
    }

    /// Fragment offset in octets.
    pub fn frag_offset(&self) -> usize {
        ((read_u16(self.buffer.as_ref(), field::FLAGS_FRAG) & 0x1FFF) as usize) * 8
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let b = &self.buffer.as_ref()[field::SRC_ADDR..field::SRC_ADDR + 4];
        Ipv4Addr::new(b[0], b[1], b[2], b[3])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let b = &self.buffer.as_ref()[field::DST_ADDR..field::DST_ADDR + 4];
        Ipv4Addr::new(b[0], b[1], b[2], b[3])
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        internet_checksum(&self.buffer.as_ref()[..hl]) == 0
    }

    /// The raw options bytes (between the fixed header and the payload).
    pub fn options_bytes(&self) -> &[u8] {
        &self.buffer.as_ref()[field::OPTIONS..self.header_len()]
    }

    /// Parses the options list. Stops at End-of-List.
    pub fn options(&self) -> WireResult<Vec<Ipv4Option>> {
        parse_options(self.options_bytes())
    }

    /// The payload after the IP header, bounded by `total_len`.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..self.total_len()]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets the TTL (does not touch the checksum; call
    /// [`Ipv4Packet::fill_checksum`] after all mutations).
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC_ADDR..field::SRC_ADDR + 4].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::DST_ADDR..field::DST_ADDR + 4].copy_from_slice(&addr.octets());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, ident: u16) {
        write_u16(self.buffer.as_mut(), field::IDENT, ident);
    }

    /// Sets the TTL and incrementally patches the header checksum per
    /// RFC 1624, without re-summing the header.
    pub fn set_ttl_adjusted(&mut self, ttl: u8) {
        let buf = self.buffer.as_mut();
        // The TTL shares a 16-bit word with the protocol octet.
        let old = read_u16(buf, field::TTL);
        buf[field::TTL] = ttl;
        let new = read_u16(buf, field::TTL);
        let ck = checksum_adjust(read_u16(buf, field::CHECKSUM), old, new);
        write_u16(buf, field::CHECKSUM, ck);
    }

    /// Sets the source address and incrementally patches the header
    /// checksum. Returns the address delta so the caller can apply the same
    /// change to a transport checksum whose pseudo-header covers it.
    pub fn set_src_addr_adjusted(&mut self, addr: Ipv4Addr) -> ChecksumDelta {
        let old = self.src_addr();
        self.set_src_addr(addr);
        self.adjust_for_addr_change(old, addr)
    }

    /// Sets the destination address and incrementally patches the header
    /// checksum. Returns the address delta for the transport checksum.
    pub fn set_dst_addr_adjusted(&mut self, addr: Ipv4Addr) -> ChecksumDelta {
        let old = self.dst_addr();
        self.set_dst_addr(addr);
        self.adjust_for_addr_change(old, addr)
    }

    fn adjust_for_addr_change(&mut self, old: Ipv4Addr, new: Ipv4Addr) -> ChecksumDelta {
        let mut delta = ChecksumDelta::new();
        delta.update_addr(old, new);
        let buf = self.buffer.as_mut();
        let ck = delta.apply(read_u16(buf, field::CHECKSUM));
        write_u16(buf, field::CHECKSUM, ck);
        delta
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        write_u16(self.buffer.as_mut(), field::CHECKSUM, 0);
        let ck = internet_checksum(&self.buffer.as_ref()[..hl]);
        write_u16(self.buffer.as_mut(), field::CHECKSUM, ck);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let range = self.header_len()..self.total_len();
        &mut self.buffer.as_mut()[range]
    }
}

fn parse_options(mut bytes: &[u8]) -> WireResult<Vec<Ipv4Option>> {
    let mut options = Vec::new();
    while !bytes.is_empty() {
        match bytes[0] {
            // End-of-list / padding zeros terminate parsing and are not
            // surfaced: they are an encoding artifact, not an option.
            0 => break,
            1 => {
                options.push(Ipv4Option::NoOp);
                bytes = &bytes[1..];
            }
            kind => {
                if bytes.len() < 2 {
                    return Err(WireError::Truncated);
                }
                let len = bytes[1] as usize;
                if len < 2 || bytes.len() < len {
                    return Err(WireError::Malformed);
                }
                if kind == OPT_RECORD_ROUTE {
                    if len < 3 {
                        return Err(WireError::Malformed);
                    }
                    options.push(Ipv4Option::RecordRoute {
                        pointer: bytes[2],
                        data: bytes[3..len].to_vec(),
                    });
                } else {
                    options.push(Ipv4Option::Other { kind, data: bytes[2..len].to_vec() });
                }
                bytes = &bytes[len..];
            }
        }
    }
    Ok(options)
}

fn emit_options(options: &[Ipv4Option], out: &mut Vec<u8>) {
    for opt in options {
        match opt {
            Ipv4Option::EndOfList => out.push(0),
            Ipv4Option::NoOp => out.push(1),
            Ipv4Option::RecordRoute { pointer, data } => {
                out.push(OPT_RECORD_ROUTE);
                out.push((3 + data.len()) as u8);
                out.push(*pointer);
                out.extend_from_slice(data);
            }
            Ipv4Option::Other { kind, data } => {
                out.push(*kind);
                out.push((2 + data.len()) as u8);
                out.extend_from_slice(data);
            }
        }
    }
    // Pad the options area to a 4-octet boundary with EOL/zero.
    while !out.len().is_multiple_of(4) {
        out.push(0);
    }
}

/// A parsed, owned IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Time-to-live.
    pub ttl: u8,
    /// Identification (used by some probes to correlate packets).
    pub ident: u16,
    /// Don't Fragment flag.
    pub dont_frag: bool,
    /// Header options.
    pub options: Vec<Ipv4Option>,
}

impl Ipv4Repr {
    /// A plain header with no options and the Linux default TTL of 64.
    pub fn new(src_addr: Ipv4Addr, dst_addr: Ipv4Addr, protocol: Protocol) -> Ipv4Repr {
        Ipv4Repr {
            src_addr,
            dst_addr,
            protocol,
            ttl: 64,
            ident: 0,
            dont_frag: true,
            options: Vec::new(),
        }
    }

    /// Parses and validates a packet view (checksum included).
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> WireResult<Ipv4Repr> {
        if !packet.verify_checksum() {
            return Err(WireError::Checksum);
        }
        Ok(Ipv4Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            ttl: packet.ttl(),
            ident: packet.ident(),
            dont_frag: packet.dont_frag(),
            options: packet.options()?,
        })
    }

    /// Header length (fixed part plus padded options).
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(Ipv4Option::wire_len).sum();
        20 + opt_len.div_ceil(4) * 4
    }

    /// Builds the complete packet (header + `payload`) as a fresh buffer,
    /// with a valid checksum.
    pub fn emit_with_payload(&self, payload: &[u8]) -> Vec<u8> {
        self.emit_with_payload_into(payload, Vec::new())
    }

    /// Like [`Ipv4Repr::emit_with_payload`], but reuses `buf` as the output
    /// buffer (any previous contents are discarded). Lets hot paths build
    /// packets in recycled frame-pool buffers instead of fresh allocations.
    pub fn emit_with_payload_into(&self, payload: &[u8], mut buf: Vec<u8>) -> Vec<u8> {
        buf.clear();
        self.emit_header_into(payload.len(), &mut buf);
        buf.extend_from_slice(payload);
        buf
    }

    /// Appends just the IPv4 header (with a valid header checksum) onto
    /// `buf`, declaring a total length of `header + payload_len`. The caller
    /// appends the payload afterwards — transports with an appending emit
    /// path (see `TcpRepr::emit_with_payload_onto`) use this to build a
    /// complete packet in one buffer with a single payload copy.
    pub fn emit_header_into(&self, payload_len: usize, buf: &mut Vec<u8>) {
        let hl = self.header_len();
        let base = buf.len();
        buf.resize(base + hl, 0);
        self.write_header(payload_len, &mut buf[base..base + hl]);
    }

    /// Writes the IPv4 header (with a valid header checksum) into a
    /// pre-zeroed `hdr` slice of at least [`Ipv4Repr::header_len`] bytes,
    /// declaring a total length of `header + payload_len`. This is the
    /// in-place half of [`Ipv4Repr::emit_header_into`]: transports that
    /// build segments with packet headroom (see
    /// `hgw_stack::tcp::SEGMENT_HEADROOM`) fill the reserved prefix with
    /// this instead of appending, so the payload is never copied again.
    pub fn write_header(&self, payload_len: usize, hdr: &mut [u8]) {
        let hl = self.header_len();
        let total = hl + payload_len;
        assert!(total <= u16::MAX as usize, "IPv4 packet too large");
        hdr[field::VER_IHL] = 0x40 | (hl / 4) as u8;
        write_u16(hdr, field::LENGTH, total as u16);
        write_u16(hdr, field::IDENT, self.ident);
        if self.dont_frag {
            hdr[field::FLAGS_FRAG] = 0x40;
        }
        hdr[field::TTL] = self.ttl;
        hdr[field::PROTOCOL] = self.protocol.number();
        hdr[field::SRC_ADDR..field::SRC_ADDR + 4].copy_from_slice(&self.src_addr.octets());
        hdr[field::DST_ADDR..field::DST_ADDR + 4].copy_from_slice(&self.dst_addr.octets());
        if !self.options.is_empty() {
            let mut opts = Vec::new();
            emit_options(&self.options, &mut opts);
            hdr[field::OPTIONS..field::OPTIONS + opts.len()].copy_from_slice(&opts);
        }
        let ck = internet_checksum(&hdr[..hl]);
        write_u16(hdr, field::CHECKSUM, ck);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Addr::new(192, 168, 1, 2),
            dst_addr: Ipv4Addr::new(10, 0, 1, 1),
            protocol: Protocol::Udp,
            ttl: 64,
            ident: 0x1234,
            dont_frag: true,
            options: Vec::new(),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let buf = repr.emit_with_payload(&[0xAA; 16]);
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(packet.payload(), &[0xAA; 16]);
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn roundtrip_with_record_route() {
        let mut repr = sample_repr();
        repr.options.push(Ipv4Option::RecordRoute { pointer: 4, data: vec![0u8; 12] });
        let buf = repr.emit_with_payload(b"hi");
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len(), 36);
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed.options, repr.options);
        assert_eq!(packet.payload(), b"hi");
    }

    #[test]
    fn checksum_detects_mutation() {
        let buf = sample_repr().emit_with_payload(&[]);
        let mut bad = buf.clone();
        bad[8] = 13; // change TTL without fixing checksum
        assert!(!Ipv4Packet::new_unchecked(&bad[..]).verify_checksum());
        assert_eq!(
            Ipv4Repr::parse(&Ipv4Packet::new_checked(&bad[..]).unwrap()),
            Err(WireError::Checksum)
        );
    }

    #[test]
    fn mutation_plus_fill_checksum_verifies() {
        let buf = sample_repr().emit_with_payload(&[1, 2, 3]);
        let mut packet = Ipv4Packet::new_unchecked(buf);
        packet.set_src_addr(Ipv4Addr::new(10, 0, 1, 99));
        packet.set_ttl(63);
        packet.fill_checksum();
        assert!(packet.verify_checksum());
        assert_eq!(packet.src_addr(), Ipv4Addr::new(10, 0, 1, 99));
        assert_eq!(packet.ttl(), 63);
    }

    #[test]
    fn rejects_short_buffers() {
        assert_eq!(Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = sample_repr().emit_with_payload(&[]);
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = sample_repr().emit_with_payload(&[]);
        buf[2] = 0xFF;
        buf[3] = 0xFF;
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn protocol_numbers() {
        for p in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp, Protocol::Dccp, Protocol::Sctp] {
            assert_eq!(Protocol::from(p.number()), p);
        }
        assert_eq!(Protocol::from(99), Protocol::Unknown(99));
        assert_eq!(Protocol::Unknown(99).number(), 99);
    }

    #[test]
    fn options_parse_noop_and_eol() {
        let opts = parse_options(&[1, 1, 0, 0]).unwrap();
        assert_eq!(opts, vec![Ipv4Option::NoOp, Ipv4Option::NoOp]);
    }

    #[test]
    fn options_reject_bad_length() {
        assert!(parse_options(&[7, 1]).is_err());
        assert!(parse_options(&[7]).is_err());
        assert!(parse_options(&[68, 10, 1]).is_err());
    }

    #[test]
    fn payload_bounded_by_total_len() {
        let repr = sample_repr();
        let mut buf = repr.emit_with_payload(&[7; 8]);
        buf.extend_from_slice(&[0xFF; 4]); // trailing garbage beyond total_len
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), &[7; 8]);
    }
}
