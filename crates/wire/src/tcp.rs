//! TCP header codec (RFC 793) with options.
//!
//! The paper runs its TCP tests with Linux 2.6.26, Reno, and SACK,
//! timestamps, window scaling, F-RTO and D-SACK disabled — but the *codec*
//! still supports the options, because middlebox handling of TCP options is
//! exactly the kind of behavior home gateways get wrong (§2 discusses
//! sequence-number-shifting middleboxes breaking SACK).

use std::net::Ipv4Addr;

use crate::checksum::{
    copy_and_checksum, finish_transport_checksum, pseudo_header_sum, sum, transport_checksum,
    verify_transport_checksum, ChecksumDelta,
};
use crate::error::{WireError, WireResult};
use crate::field::{read_u16, read_u32, write_u16, write_u32};
use crate::ip::Protocol;

/// Minimum (option-less) TCP header length.
pub const MIN_HEADER_LEN: usize = 20;

/// A TCP sequence number with wrapping comparison helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNumber(pub u32);

impl SeqNumber {
    /// `self + n` with wraparound.
    #[allow(clippy::should_implement_trait)] // deliberate: a u32 offset, not Add<Self>
    pub fn add(self, n: u32) -> SeqNumber {
        SeqNumber(self.0.wrapping_add(n))
    }

    /// Signed distance `self - other` with wraparound.
    pub fn dist(self, other: SeqNumber) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// Wrapping `self < other`.
    pub fn lt(self, other: SeqNumber) -> bool {
        self.dist(other) < 0
    }

    /// Wrapping `self <= other`.
    pub fn le(self, other: SeqNumber) -> bool {
        self.dist(other) <= 0
    }
}

impl core::fmt::Display for SeqNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tiny local stand-in for the `bitflags` crate (no external deps in the
/// wire layer).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $value:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($value); )*
            /// No flags set.
            pub const EMPTY: $name = $name(0);

            /// True if every flag in `other` is set in `self`.
            pub fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// True if any flag in `other` is set in `self`.
            pub fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }
        }

        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }

        impl core::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) { self.0 |= rhs.0; }
        }
    };
}

bitflags_lite! {
    /// TCP header flags (low 6 bits of the 13th/14th octets).
    pub struct TcpFlags: u8 {
        /// FIN: sender is done sending.
        const FIN = 0x01;
        /// SYN: synchronize sequence numbers.
        const SYN = 0x02;
        /// RST: abort the connection.
        const RST = 0x04;
        /// PSH: push buffered data to the application.
        const PSH = 0x08;
        /// ACK: the acknowledgment field is valid.
        const ACK = 0x10;
        /// URG: the urgent pointer is valid.
        const URG = 0x20;
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (SYN only).
    MaxSegmentSize(u16),
    /// Window scale shift (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// SACK blocks (left/right sequence edges).
    SackRange(Vec<(u32, u32)>),
    /// Timestamps (TSval, TSecr).
    Timestamps(u32, u32),
    /// Unknown option kept raw.
    Unknown {
        /// Option kind octet.
        kind: u8,
        /// Option body.
        data: Vec<u8>,
    },
}

impl TcpOption {
    fn wire_len(&self) -> usize {
        match self {
            TcpOption::MaxSegmentSize(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::SackRange(ranges) => 2 + ranges.len() * 8,
            TcpOption::Timestamps(..) => 10,
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }
}

mod field {
    pub const SRC_PORT: usize = 0;
    pub const DST_PORT: usize = 2;
    pub const SEQ: usize = 4;
    pub const ACK: usize = 8;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: usize = 14;
    pub const CHECKSUM: usize = 16;
    pub const URGENT: usize = 18;
    pub const OPTIONS: usize = 20;
}

/// A read/write view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> TcpPacket<T> {
        TcpPacket { buffer }
    }

    /// Wraps a buffer, validating the header length.
    pub fn new_checked(buffer: T) -> WireResult<TcpPacket<T>> {
        let packet = TcpPacket::new_unchecked(buffer);
        let buf = packet.buffer.as_ref();
        if buf.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let hl = packet.header_len();
        if hl < MIN_HEADER_LEN || buf.len() < hl {
            return Err(WireError::Malformed);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// Sequence number.
    pub fn seq_number(&self) -> SeqNumber {
        SeqNumber(read_u32(self.buffer.as_ref(), field::SEQ))
    }

    /// Acknowledgment number.
    pub fn ack_number(&self) -> SeqNumber {
        SeqNumber(read_u32(self.buffer.as_ref(), field::ACK))
    }

    /// Header length in octets (data offset × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[field::DATA_OFF] >> 4) as usize) * 4
    }

    /// Header flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[field::FLAGS] & 0x3F)
    }

    /// Receive window (unscaled).
    pub fn window(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::WINDOW)
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Raw option bytes.
    pub fn options_bytes(&self) -> &[u8] {
        &self.buffer.as_ref()[field::OPTIONS..self.header_len()]
    }

    /// Parses the options list.
    pub fn options(&self) -> WireResult<Vec<TcpOption>> {
        parse_options(self.options_bytes())
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the checksum under the pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        verify_transport_checksum(src, dst, Protocol::Tcp.number(), self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
    /// Sets the source port (checksum not updated).
    pub fn set_src_port(&mut self, port: u16) {
        write_u16(self.buffer.as_mut(), field::SRC_PORT, port);
    }

    /// Sets the destination port (checksum not updated).
    pub fn set_dst_port(&mut self, port: u16) {
        write_u16(self.buffer.as_mut(), field::DST_PORT, port);
    }

    /// Sets the sequence number (checksum not updated).
    pub fn set_seq_number(&mut self, seq: SeqNumber) {
        write_u32(self.buffer.as_mut(), field::SEQ, seq.0);
    }

    /// Sets the source port and incrementally patches the checksum per
    /// RFC 1624, without re-summing the segment.
    pub fn set_src_port_adjusted(&mut self, port: u16) {
        let old = self.src_port();
        self.set_src_port(port);
        let mut delta = ChecksumDelta::new();
        delta.update_word(old, port);
        self.adjust_checksum(delta);
    }

    /// Sets the destination port and incrementally patches the checksum.
    pub fn set_dst_port_adjusted(&mut self, port: u16) {
        let old = self.dst_port();
        self.set_dst_port(port);
        let mut delta = ChecksumDelta::new();
        delta.update_word(old, port);
        self.adjust_checksum(delta);
    }

    /// Applies a checksum delta for covered words that changed *outside*
    /// this segment — the pseudo-header addresses a NAT rewrites. Stores a
    /// folded-to-zero result as `0xFFFF`, matching
    /// [`TcpPacket::fill_checksum`].
    pub fn adjust_checksum(&mut self, delta: ChecksumDelta) {
        let ck = delta.apply_transport(self.checksum());
        write_u16(self.buffer.as_mut(), field::CHECKSUM, ck);
    }

    /// Recomputes the checksum under the pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        write_u16(self.buffer.as_mut(), field::CHECKSUM, 0);
        let ck = transport_checksum(src, dst, Protocol::Tcp.number(), self.buffer.as_ref());
        write_u16(self.buffer.as_mut(), field::CHECKSUM, ck);
    }
}

fn parse_options(mut bytes: &[u8]) -> WireResult<Vec<TcpOption>> {
    let mut options = Vec::new();
    while !bytes.is_empty() {
        match bytes[0] {
            0 => break, // End of option list.
            1 => {
                bytes = &bytes[1..]; // NOP padding, not represented.
            }
            kind => {
                if bytes.len() < 2 {
                    return Err(WireError::Truncated);
                }
                let len = bytes[1] as usize;
                if len < 2 || bytes.len() < len {
                    return Err(WireError::Malformed);
                }
                let body = &bytes[2..len];
                let opt = match (kind, body.len()) {
                    (2, 2) => TcpOption::MaxSegmentSize(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (5, n) if n % 8 == 0 => {
                        let ranges = body
                            .chunks_exact(8)
                            .map(|c| (read_u32(c, 0), read_u32(c, 4)))
                            .collect();
                        TcpOption::SackRange(ranges)
                    }
                    (8, 8) => TcpOption::Timestamps(read_u32(body, 0), read_u32(body, 4)),
                    _ => TcpOption::Unknown { kind, data: body.to_vec() },
                };
                options.push(opt);
                bytes = &bytes[len..];
            }
        }
    }
    Ok(options)
}

fn emit_options(options: &[TcpOption], out: &mut Vec<u8>) {
    for opt in options {
        match opt {
            TcpOption::MaxSegmentSize(mss) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => out.extend_from_slice(&[3, 3, *shift]),
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::SackRange(ranges) => {
                out.push(5);
                out.push((2 + ranges.len() * 8) as u8);
                for (l, r) in ranges {
                    out.extend_from_slice(&l.to_be_bytes());
                    out.extend_from_slice(&r.to_be_bytes());
                }
            }
            TcpOption::Timestamps(val, ecr) => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&val.to_be_bytes());
                out.extend_from_slice(&ecr.to_be_bytes());
            }
            TcpOption::Unknown { kind, data } => {
                out.push(*kind);
                out.push((2 + data.len()) as u8);
                out.extend_from_slice(data);
            }
        }
    }
    while !out.len().is_multiple_of(4) {
        out.push(1); // NOP padding
    }
}

/// A parsed, owned TCP header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: SeqNumber,
    /// Acknowledgment number (meaningful when ACK flag set).
    pub ack: SeqNumber,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window (unscaled).
    pub window: u16,
    /// Header options.
    pub options: Vec<TcpOption>,
}

impl TcpRepr {
    /// A bare segment with the given flags and no options.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> TcpRepr {
        TcpRepr {
            src_port,
            dst_port,
            seq: SeqNumber(0),
            ack: SeqNumber(0),
            flags,
            window: u16::MAX,
            options: Vec::new(),
        }
    }

    /// Parses a segment view, verifying the checksum.
    pub fn parse<T: AsRef<[u8]>>(
        packet: &TcpPacket<T>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> WireResult<TcpRepr> {
        if !packet.verify_checksum(src, dst) {
            return Err(WireError::Checksum);
        }
        Ok(TcpRepr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            seq: packet.seq_number(),
            ack: packet.ack_number(),
            flags: packet.flags(),
            window: packet.window(),
            options: packet.options()?,
        })
    }

    /// Parses a segment view without verifying the checksum.
    ///
    /// For callers that already verified the segment (or deliberately
    /// skip verification, e.g. after an incremental NAT rewrite) —
    /// [`TcpRepr::parse`] re-reads the full payload to verify, which
    /// doubles the per-segment memory traffic on the receive path.
    pub fn parse_unverified<T: AsRef<[u8]>>(packet: &TcpPacket<T>) -> WireResult<TcpRepr> {
        Ok(TcpRepr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            seq: packet.seq_number(),
            ack: packet.ack_number(),
            flags: packet.flags(),
            window: packet.window(),
            options: packet.options()?,
        })
    }

    /// Header length including padded options.
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(TcpOption::wire_len).sum();
        MIN_HEADER_LEN + opt_len.div_ceil(4) * 4
    }

    /// Builds the complete segment (header + payload) with a valid checksum
    /// under the given pseudo-header.
    pub fn emit_with_payload(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.header_len() + payload.len());
        self.emit_with_payload_onto(src, dst, payload, &mut buf);
        buf
    }

    /// Appends the complete segment (header + payload + valid checksum)
    /// onto `buf`, which may already hold an IPv4 header built with
    /// `Ipv4Repr::emit_header_into`. This is the bulk-transfer fast path:
    /// the segment lands directly in the outgoing (pooled) frame instead of
    /// transiting an intermediate allocation.
    pub fn emit_with_payload_onto(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: &[u8],
        buf: &mut Vec<u8>,
    ) {
        let (base, hl) = self.emit_header_fields(buf);
        // Fused copy+checksum: the payload is summed by the same pass that
        // appends it, so the segment is never re-read to fill the checksum.
        let payload_sum = copy_and_checksum(payload, buf);
        self.finish_emit(src, dst, buf, base, hl, payload.len(), payload_sum);
    }

    /// Like [`TcpRepr::emit_with_payload_onto`], but takes the payload's
    /// pre-computed pair sum (as returned by
    /// [`copy_and_checksum`] or
    /// `ByteQueue::copy_range_into_with_sum`) instead of summing during the
    /// copy. This is the scatter-gather bulk path: the send buffer already
    /// summed the payload when it materialized the segment, so emission
    /// writes header and payload in one pass with zero checksum re-reads.
    ///
    /// `payload_sum` must be the big-endian pair-space accumulator of
    /// exactly `payload`, computed as if it started at an even offset
    /// (TCP headers are multiples of 4 bytes, so the payload always lands
    /// on an even segment offset and the sum composes without swapping).
    pub fn emit_with_payload_sum_onto(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: &[u8],
        payload_sum: u32,
        buf: &mut Vec<u8>,
    ) {
        let (base, hl) = self.emit_header_fields(buf);
        buf.extend_from_slice(payload);
        self.finish_emit(src, dst, buf, base, hl, payload.len(), payload_sum);
    }

    /// Writes the complete header (fields, flags, options, checksum) into
    /// the pre-zeroed prefix of `seg`, whose remainder already holds the
    /// payload bytes whose pair sum is `payload_sum`. This is the in-place
    /// counterpart of [`TcpRepr::emit_with_payload_sum_onto`] for buffers
    /// built with packet headroom: the payload was written (and summed)
    /// directly at its final offset, so emission touches only header bytes.
    ///
    /// `payload_sum` obeys the same even-offset contract as
    /// [`TcpRepr::emit_with_payload_sum_onto`].
    pub fn write_header_with_sum(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload_len: usize,
        payload_sum: u32,
        seg: &mut [u8],
    ) {
        let hl = self.header_len();
        self.write_header_fields(&mut seg[..hl]);
        let seg_len = (hl + payload_len) as u32;
        let acc = sum(&seg[..hl], pseudo_header_sum(src, dst, Protocol::Tcp.number(), seg_len))
            + payload_sum;
        write_u16(seg, field::CHECKSUM, finish_transport_checksum(acc));
    }

    /// Appends the zero-checksum header (fields, flags, options) onto
    /// `buf`; returns `(base, header_len)` for the checksum fixup.
    fn emit_header_fields(&self, buf: &mut Vec<u8>) -> (usize, usize) {
        let hl = self.header_len();
        let base = buf.len();
        // Zero-fill only the header region; appending the payload directly
        // skips a redundant memset of up to an MSS per data segment.
        buf.resize(base + hl, 0);
        self.write_header_fields(&mut buf[base..base + hl]);
        (base, hl)
    }

    /// Writes the zero-checksum header fields into a pre-zeroed slice of
    /// exactly [`TcpRepr::header_len`] bytes.
    fn write_header_fields(&self, seg: &mut [u8]) {
        let hl = seg.len();
        write_u16(seg, field::SRC_PORT, self.src_port);
        write_u16(seg, field::DST_PORT, self.dst_port);
        write_u32(seg, field::SEQ, self.seq.0);
        write_u32(seg, field::ACK, self.ack.0);
        seg[field::DATA_OFF] = ((hl / 4) as u8) << 4;
        seg[field::FLAGS] = self.flags.0;
        write_u16(seg, field::WINDOW, self.window);
        write_u16(seg, field::URGENT, 0);
        if !self.options.is_empty() {
            let mut opts = Vec::new();
            emit_options(&self.options, &mut opts);
            seg[field::OPTIONS..field::OPTIONS + opts.len()].copy_from_slice(&opts);
        }
    }

    /// Composes header + pseudo-header + payload sums and writes the
    /// checksum field in place — no re-read of the emitted segment body.
    #[allow(clippy::too_many_arguments)]
    fn finish_emit(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        buf: &mut [u8],
        base: usize,
        hl: usize,
        payload_len: usize,
        payload_sum: u32,
    ) {
        let seg_len = (hl + payload_len) as u32;
        let acc = sum(
            &buf[base..base + hl],
            pseudo_header_sum(src, dst, Protocol::Tcp.number(), seg_len),
        ) + payload_sum;
        write_u16(&mut buf[base..], field::CHECKSUM, finish_transport_checksum(acc));
    }

    /// Total segment length for a given payload.
    pub fn segment_len(&self, payload_len: usize) -> usize {
        self.header_len() + payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);

    fn syn_repr() -> TcpRepr {
        TcpRepr {
            src_port: 40000,
            dst_port: 80,
            seq: SeqNumber(0x1000_0000),
            ack: SeqNumber(0),
            flags: TcpFlags::SYN,
            window: 65535,
            options: vec![TcpOption::MaxSegmentSize(1460)],
        }
    }

    #[test]
    fn seq_number_wrapping() {
        let near_max = SeqNumber(u32::MAX - 1);
        assert_eq!(near_max.add(3), SeqNumber(1));
        assert!(near_max.lt(near_max.add(3)));
        assert!(near_max.le(near_max));
        assert_eq!(near_max.add(3).dist(near_max), 3);
        assert_eq!(near_max.dist(near_max.add(3)), -3);
    }

    #[test]
    fn flags_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::ACK | TcpFlags::RST));
        assert!(!f.intersects(TcpFlags::RST));
    }

    #[test]
    fn fused_emit_matches_presummed_emit_and_verifies() {
        // The fused (sum-during-copy) and scatter-gather (pre-summed)
        // emitters must produce bit-identical segments, and the checksum
        // they write must survive the full-re-read verifier — across odd
        // and even payload lengths, empty payloads, and option headers.
        for with_opts in [false, true] {
            for len in [0usize, 1, 2, 3, 64, 65, 536, 1459, 1460] {
                let mut repr = TcpRepr::new(40000, 80, TcpFlags::PSH | TcpFlags::ACK);
                repr.seq = SeqNumber(0xDEAD_BEEF);
                repr.ack = SeqNumber(0x0102_0304);
                if with_opts {
                    repr.options = vec![TcpOption::MaxSegmentSize(1460)];
                }
                let payload: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();

                let mut fused = vec![0x45u8; 20]; // stand-in IPv4 header prefix
                repr.emit_with_payload_onto(SRC, DST, &payload, &mut fused);

                let mut copied = Vec::new();
                let payload_sum = copy_and_checksum(&payload, &mut copied);
                assert_eq!(copied, payload);
                let mut presummed = vec![0x45u8; 20];
                repr.emit_with_payload_sum_onto(SRC, DST, &payload, payload_sum, &mut presummed);

                assert_eq!(fused, presummed, "len={len} opts={with_opts}");
                let seg = &fused[20..];
                assert!(
                    verify_transport_checksum(SRC, DST, Protocol::Tcp.number(), seg),
                    "len={len} opts={with_opts}"
                );
                let parsed = TcpRepr::parse_unverified(&TcpPacket::new_unchecked(seg)).unwrap();
                assert_eq!(parsed, repr, "len={len} opts={with_opts}");
            }
        }
    }

    #[test]
    fn emit_parse_roundtrip_syn_with_mss() {
        let repr = syn_repr();
        let buf = repr.emit_with_payload(SRC, DST, &[]);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len(), 24);
        assert_eq!(TcpRepr::parse(&packet, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn emit_parse_roundtrip_data_segment() {
        let mut repr = syn_repr();
        repr.flags = TcpFlags::ACK | TcpFlags::PSH;
        repr.options.clear();
        repr.ack = SeqNumber(77);
        let buf = repr.emit_with_payload(SRC, DST, b"hello world");
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), b"hello world");
        assert_eq!(TcpRepr::parse(&packet, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn all_options_roundtrip() {
        let mut repr = syn_repr();
        repr.options = vec![
            TcpOption::MaxSegmentSize(1460),
            TcpOption::WindowScale(7),
            TcpOption::SackPermitted,
            TcpOption::Timestamps(123456, 654321),
            TcpOption::SackRange(vec![(100, 200), (300, 400)]),
        ];
        // 37 option bytes pad to 40: exactly the 60-byte header maximum.
        assert_eq!(repr.header_len(), 60);
        let buf = repr.emit_with_payload(SRC, DST, &[]);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        let parsed = TcpRepr::parse(&packet, SRC, DST).unwrap();
        assert_eq!(parsed.options, repr.options);
    }

    #[test]
    fn unknown_option_roundtrip() {
        let mut repr = syn_repr();
        repr.options = vec![TcpOption::Unknown { kind: 254, data: vec![9, 9] }];
        let buf = repr.emit_with_payload(SRC, DST, &[]);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(TcpRepr::parse(&packet, SRC, DST).unwrap().options, repr.options);
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let buf = syn_repr().emit_with_payload(SRC, DST, &[]);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert!(!packet.verify_checksum(Ipv4Addr::new(10, 0, 1, 99), DST));
    }

    #[test]
    fn nat_rewrite_with_fixup_verifies() {
        let buf = syn_repr().emit_with_payload(SRC, DST, b"payload");
        let mut packet = TcpPacket::new_unchecked(buf);
        let ext = Ipv4Addr::new(10, 0, 1, 99);
        packet.set_src_port(62000);
        packet.fill_checksum(ext, DST);
        assert!(packet.verify_checksum(ext, DST));
    }

    #[test]
    fn sequence_shift_breaks_embedded_sack_invariant() {
        // A middlebox that rewrites `seq` but not SACK edges produces
        // inconsistent options — the failure mode noted in §2 / RFC 2018
        // discussion. Verify the codec lets a test observe this.
        let mut repr = syn_repr();
        repr.flags = TcpFlags::ACK;
        repr.options = vec![TcpOption::SackRange(vec![(1000, 2000)])];
        let buf = repr.emit_with_payload(SRC, DST, &[]);
        let mut packet = TcpPacket::new_unchecked(buf);
        packet.set_seq_number(SeqNumber(999_000));
        packet.fill_checksum(SRC, DST);
        let reparsed =
            TcpRepr::parse(&TcpPacket::new_checked(packet.buffer).unwrap(), SRC, DST).unwrap();
        assert_eq!(reparsed.seq, SeqNumber(999_000));
        // SACK edges unchanged — observably inconsistent with the new seq.
        assert_eq!(reparsed.options, vec![TcpOption::SackRange(vec![(1000, 2000)])]);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = syn_repr().emit_with_payload(SRC, DST, &[]);
        buf[12] = 0x20; // data offset 8 octets < 20
        assert_eq!(TcpPacket::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(TcpPacket::new_checked(&[0u8; 12][..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn option_parse_rejects_garbage() {
        assert!(parse_options(&[2]).is_err()); // kind without length
        assert!(parse_options(&[2, 1]).is_err()); // length < 2
        assert!(parse_options(&[2, 10, 0]).is_err()); // length beyond buffer
    }
}
