//! DHCP codec (RFC 2131/2132, the options the testbed uses).
//!
//! In the paper's testbed (Figure 1) DHCP runs twice per device: the test
//! server leases the gateway its "WAN" address (plus DNS server), and the
//! gateway's own DHCP server configures the test client on the "LAN" side.
//! We reproduce both exchanges.

use std::net::Ipv4Addr;

use crate::error::{WireError, WireResult};
use crate::field::{read_u32, write_u32};

/// BOOTP fixed header length before options.
const FIXED_LEN: usize = 236;
/// RFC 2131 magic cookie.
const MAGIC: u32 = 0x6382_5363;

/// DHCP message types (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpMessageType {
    /// Client broadcast to locate servers.
    Discover,
    /// Server offer of parameters.
    Offer,
    /// Client request of offered parameters.
    Request,
    /// Server acknowledgment committing the lease.
    Ack,
    /// Server refusal.
    Nak,
    /// Client releasing its lease.
    Release,
}

impl DhcpMessageType {
    fn code(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Release => 7,
        }
    }

    fn from_code(c: u8) -> WireResult<DhcpMessageType> {
        Ok(match c {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            _ => return Err(WireError::Malformed),
        })
    }
}

/// A parsed DHCP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// Message type (option 53).
    pub message_type: DhcpMessageType,
    /// True for client→server messages (BOOTP op 1), false for replies.
    pub is_request_op: bool,
    /// Transaction id chosen by the client.
    pub xid: u32,
    /// Client's current address (`ciaddr`).
    pub client_addr: Ipv4Addr,
    /// Address the server assigns (`yiaddr`).
    pub your_addr: Ipv4Addr,
    /// Server address (`siaddr`).
    pub server_addr: Ipv4Addr,
    /// Client hardware address (first 6 octets of `chaddr`).
    pub chaddr: [u8; 6],
    /// Option 54: server identifier.
    pub server_id: Option<Ipv4Addr>,
    /// Option 50: requested IP address.
    pub requested_ip: Option<Ipv4Addr>,
    /// Option 51: lease time, seconds.
    pub lease_secs: Option<u32>,
    /// Option 1: subnet mask.
    pub subnet_mask: Option<Ipv4Addr>,
    /// Option 3: default router.
    pub router: Option<Ipv4Addr>,
    /// Option 6: DNS servers.
    pub dns_servers: Vec<Ipv4Addr>,
}

impl DhcpMessage {
    /// A minimal DISCOVER from a client with hardware address `chaddr`.
    pub fn discover(xid: u32, chaddr: [u8; 6]) -> DhcpMessage {
        DhcpMessage {
            message_type: DhcpMessageType::Discover,
            is_request_op: true,
            xid,
            client_addr: Ipv4Addr::UNSPECIFIED,
            your_addr: Ipv4Addr::UNSPECIFIED,
            server_addr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            server_id: None,
            requested_ip: None,
            lease_secs: None,
            subnet_mask: None,
            router: None,
            dns_servers: Vec::new(),
        }
    }

    /// Encodes the message as a UDP payload.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; FIXED_LEN];
        buf[0] = if self.is_request_op { 1 } else { 2 };
        buf[1] = 1; // htype: Ethernet
        buf[2] = 6; // hlen
        write_u32(&mut buf, 4, self.xid);
        buf[12..16].copy_from_slice(&self.client_addr.octets());
        buf[16..20].copy_from_slice(&self.your_addr.octets());
        buf[20..24].copy_from_slice(&self.server_addr.octets());
        buf[28..34].copy_from_slice(&self.chaddr);
        buf.extend_from_slice(&MAGIC.to_be_bytes());
        buf.extend_from_slice(&[53, 1, self.message_type.code()]);
        let mut opt_addr = |code: u8, addr: &Ipv4Addr| {
            buf.extend_from_slice(&[code, 4]);
            buf.extend_from_slice(&addr.octets());
        };
        if let Some(a) = &self.subnet_mask {
            opt_addr(1, a);
        }
        if let Some(a) = &self.router {
            opt_addr(3, a);
        }
        if let Some(a) = &self.requested_ip {
            opt_addr(50, a);
        }
        if let Some(a) = &self.server_id {
            opt_addr(54, a);
        }
        if let Some(secs) = self.lease_secs {
            buf.extend_from_slice(&[51, 4]);
            buf.extend_from_slice(&secs.to_be_bytes());
        }
        if !self.dns_servers.is_empty() {
            buf.push(6);
            buf.push((self.dns_servers.len() * 4) as u8);
            for a in &self.dns_servers {
                buf.extend_from_slice(&a.octets());
            }
        }
        buf.push(255); // end
        buf
    }

    /// Parses a message from a UDP payload.
    pub fn parse(data: &[u8]) -> WireResult<DhcpMessage> {
        if data.len() < FIXED_LEN + 4 {
            return Err(WireError::Truncated);
        }
        if read_u32(data, FIXED_LEN) != MAGIC {
            return Err(WireError::Malformed);
        }
        let addr_at =
            |off: usize| Ipv4Addr::new(data[off], data[off + 1], data[off + 2], data[off + 3]);
        let mut chaddr = [0u8; 6];
        chaddr.copy_from_slice(&data[28..34]);
        let mut msg = DhcpMessage {
            message_type: DhcpMessageType::Discover, // placeholder until option 53
            is_request_op: data[0] == 1,
            xid: read_u32(data, 4),
            client_addr: addr_at(12),
            your_addr: addr_at(16),
            server_addr: addr_at(20),
            chaddr,
            server_id: None,
            requested_ip: None,
            lease_secs: None,
            subnet_mask: None,
            router: None,
            dns_servers: Vec::new(),
        };
        let mut saw_type = false;
        let mut opts = &data[FIXED_LEN + 4..];
        while !opts.is_empty() {
            match opts[0] {
                0 => opts = &opts[1..], // pad
                255 => break,
                code => {
                    if opts.len() < 2 {
                        return Err(WireError::Truncated);
                    }
                    let len = opts[1] as usize;
                    if opts.len() < 2 + len {
                        return Err(WireError::Truncated);
                    }
                    let body = &opts[2..2 + len];
                    let body_addr = || {
                        if body.len() == 4 {
                            Ok(Ipv4Addr::new(body[0], body[1], body[2], body[3]))
                        } else {
                            Err(WireError::Malformed)
                        }
                    };
                    match code {
                        53 => {
                            if len != 1 {
                                return Err(WireError::Malformed);
                            }
                            msg.message_type = DhcpMessageType::from_code(body[0])?;
                            saw_type = true;
                        }
                        1 => msg.subnet_mask = Some(body_addr()?),
                        3 => msg.router = Some(body_addr()?),
                        50 => msg.requested_ip = Some(body_addr()?),
                        54 => msg.server_id = Some(body_addr()?),
                        51 => {
                            if len != 4 {
                                return Err(WireError::Malformed);
                            }
                            msg.lease_secs = Some(read_u32(body, 0));
                        }
                        6 => {
                            if !len.is_multiple_of(4) {
                                return Err(WireError::Malformed);
                            }
                            msg.dns_servers = body
                                .chunks_exact(4)
                                .map(|c| Ipv4Addr::new(c[0], c[1], c[2], c[3]))
                                .collect();
                        }
                        _ => {} // unknown options skipped
                    }
                    opts = &opts[2 + len..];
                }
            }
        }
        if !saw_type {
            return Err(WireError::Malformed);
        }
        Ok(msg)
    }
}

/// DHCP server port.
pub const SERVER_PORT: u16 = 67;
/// DHCP client port.
pub const CLIENT_PORT: u16 = 68;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_roundtrip() {
        let msg = DhcpMessage::discover(0xABCD_1234, [2, 0, 0, 0, 0, 9]);
        assert_eq!(DhcpMessage::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn offer_with_full_config_roundtrip() {
        let mut msg = DhcpMessage::discover(7, [2, 0, 0, 0, 0, 1]);
        msg.message_type = DhcpMessageType::Offer;
        msg.is_request_op = false;
        msg.your_addr = Ipv4Addr::new(192, 168, 1, 100);
        msg.server_addr = Ipv4Addr::new(192, 168, 1, 1);
        msg.server_id = Some(Ipv4Addr::new(192, 168, 1, 1));
        msg.lease_secs = Some(86_400);
        msg.subnet_mask = Some(Ipv4Addr::new(255, 255, 255, 0));
        msg.router = Some(Ipv4Addr::new(192, 168, 1, 1));
        msg.dns_servers = vec![Ipv4Addr::new(192, 168, 1, 1), Ipv4Addr::new(10, 0, 0, 53)];
        assert_eq!(DhcpMessage::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn request_carries_requested_ip_and_server_id() {
        let mut msg = DhcpMessage::discover(9, [2, 0, 0, 0, 0, 2]);
        msg.message_type = DhcpMessageType::Request;
        msg.requested_ip = Some(Ipv4Addr::new(10, 0, 3, 7));
        msg.server_id = Some(Ipv4Addr::new(10, 0, 3, 1));
        let parsed = DhcpMessage::parse(&msg.emit()).unwrap();
        assert_eq!(parsed.requested_ip, Some(Ipv4Addr::new(10, 0, 3, 7)));
        assert_eq!(parsed.server_id, Some(Ipv4Addr::new(10, 0, 3, 1)));
    }

    #[test]
    fn rejects_missing_magic_or_type() {
        let msg = DhcpMessage::discover(1, [0; 6]);
        let mut buf = msg.emit();
        buf[FIXED_LEN] ^= 0xFF;
        assert_eq!(DhcpMessage::parse(&buf), Err(WireError::Malformed));

        let mut no_type = msg.emit();
        // Overwrite option 53 with pad bytes.
        no_type[FIXED_LEN + 4] = 0;
        no_type[FIXED_LEN + 5] = 0;
        no_type[FIXED_LEN + 6] = 0;
        assert_eq!(DhcpMessage::parse(&no_type), Err(WireError::Malformed));
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(DhcpMessage::parse(&[0u8; 100]), Err(WireError::Truncated));
    }

    #[test]
    fn all_message_types_roundtrip() {
        for ty in [
            DhcpMessageType::Discover,
            DhcpMessageType::Offer,
            DhcpMessageType::Request,
            DhcpMessageType::Ack,
            DhcpMessageType::Nak,
            DhcpMessageType::Release,
        ] {
            let mut msg = DhcpMessage::discover(3, [1; 6]);
            msg.message_type = ty;
            assert_eq!(DhcpMessage::parse(&msg.emit()).unwrap().message_type, ty);
        }
    }
}
