//! Error type shared by all wire-format parsers.

use core::fmt;

/// Why a buffer failed to parse as a given protocol header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header, or shorter than a length
    /// field inside the header claims.
    Truncated,
    /// A checksum did not verify.
    Checksum,
    /// A field holds a value the parser cannot represent (bad version, bad
    /// header length, unknown mandatory option...).
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::Checksum => write!(f, "checksum mismatch"),
            WireError::Malformed => write!(f, "malformed packet"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire parsing.
pub type WireResult<T> = Result<T, WireError>;
