//! SCTP codec (RFC 4960, the subset needed for single-homed associations).
//!
//! §4.3 of the paper found — astoundingly — that SCTP associations could be
//! established through 18 of 34 gateways, and explains why: SCTP's CRC-32c
//! checksum does not cover a network-layer pseudo-header, so a NAT that
//! falls back to rewriting only the IP header leaves the packet valid.
//! This codec implements enough of SCTP to set up an association
//! (INIT / INIT-ACK / COOKIE-ECHO / COOKIE-ACK), move data (DATA / SACK),
//! and tear down (SHUTDOWN family, ABORT).

use crate::checksum::sctp_checksum;
use crate::error::{WireError, WireResult};
use crate::field::{read_u16, read_u32, write_u16, write_u32};

/// Fixed SCTP common header length.
pub const COMMON_HEADER_LEN: usize = 12;

/// One SCTP chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Chunk {
    /// DATA (type 0).
    Data {
        /// Transmission sequence number.
        tsn: u32,
        /// Stream identifier.
        stream_id: u16,
        /// Stream sequence number.
        stream_seq: u16,
        /// Payload protocol identifier.
        ppid: u32,
        /// User data.
        data: Vec<u8>,
    },
    /// INIT (type 1).
    Init {
        /// Initiate tag — the verification tag the peer must use.
        init_tag: u32,
        /// Advertised receiver window.
        a_rwnd: u32,
        /// Number of outbound streams.
        outbound_streams: u16,
        /// Number of inbound streams.
        inbound_streams: u16,
        /// Initial TSN.
        initial_tsn: u32,
    },
    /// INIT ACK (type 2): INIT fields plus a state cookie parameter.
    InitAck {
        /// Initiate tag.
        init_tag: u32,
        /// Advertised receiver window.
        a_rwnd: u32,
        /// Number of outbound streams.
        outbound_streams: u16,
        /// Number of inbound streams.
        inbound_streams: u16,
        /// Initial TSN.
        initial_tsn: u32,
        /// Opaque state cookie (parameter type 7).
        cookie: Vec<u8>,
    },
    /// SACK (type 3), gap blocks omitted (not needed on a loss-free testbed
    /// probe; the prober never reorders SCTP).
    Sack {
        /// Cumulative TSN acknowledged.
        cum_tsn: u32,
        /// Advertised receiver window.
        a_rwnd: u32,
    },
    /// HEARTBEAT (type 4) carrying opaque sender info.
    Heartbeat {
        /// Heartbeat info parameter body.
        info: Vec<u8>,
    },
    /// HEARTBEAT ACK (type 5).
    HeartbeatAck {
        /// Echoed heartbeat info.
        info: Vec<u8>,
    },
    /// ABORT (type 6).
    Abort,
    /// SHUTDOWN (type 7).
    Shutdown {
        /// Cumulative TSN acknowledged.
        cum_tsn: u32,
    },
    /// SHUTDOWN ACK (type 8).
    ShutdownAck,
    /// COOKIE ECHO (type 10).
    CookieEcho {
        /// The cookie from INIT ACK.
        cookie: Vec<u8>,
    },
    /// COOKIE ACK (type 11).
    CookieAck,
    /// SHUTDOWN COMPLETE (type 14).
    ShutdownComplete,
}

impl Chunk {
    fn type_code(&self) -> u8 {
        match self {
            Chunk::Data { .. } => 0,
            Chunk::Init { .. } => 1,
            Chunk::InitAck { .. } => 2,
            Chunk::Sack { .. } => 3,
            Chunk::Heartbeat { .. } => 4,
            Chunk::HeartbeatAck { .. } => 5,
            Chunk::Abort => 6,
            Chunk::Shutdown { .. } => 7,
            Chunk::ShutdownAck => 8,
            Chunk::CookieEcho { .. } => 10,
            Chunk::CookieAck => 11,
            Chunk::ShutdownComplete => 14,
        }
    }

    fn emit_value(&self, out: &mut Vec<u8>) {
        match self {
            Chunk::Data { tsn, stream_id, stream_seq, ppid, data } => {
                out.extend_from_slice(&tsn.to_be_bytes());
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&stream_seq.to_be_bytes());
                out.extend_from_slice(&ppid.to_be_bytes());
                out.extend_from_slice(data);
            }
            Chunk::Init { init_tag, a_rwnd, outbound_streams, inbound_streams, initial_tsn } => {
                out.extend_from_slice(&init_tag.to_be_bytes());
                out.extend_from_slice(&a_rwnd.to_be_bytes());
                out.extend_from_slice(&outbound_streams.to_be_bytes());
                out.extend_from_slice(&inbound_streams.to_be_bytes());
                out.extend_from_slice(&initial_tsn.to_be_bytes());
            }
            Chunk::InitAck {
                init_tag,
                a_rwnd,
                outbound_streams,
                inbound_streams,
                initial_tsn,
                cookie,
            } => {
                out.extend_from_slice(&init_tag.to_be_bytes());
                out.extend_from_slice(&a_rwnd.to_be_bytes());
                out.extend_from_slice(&outbound_streams.to_be_bytes());
                out.extend_from_slice(&inbound_streams.to_be_bytes());
                out.extend_from_slice(&initial_tsn.to_be_bytes());
                // State cookie parameter: type 7, length includes 4-byte
                // parameter header.
                out.extend_from_slice(&7u16.to_be_bytes());
                out.extend_from_slice(&((4 + cookie.len()) as u16).to_be_bytes());
                out.extend_from_slice(cookie);
                while !out.len().is_multiple_of(4) {
                    out.push(0);
                }
            }
            Chunk::Sack { cum_tsn, a_rwnd } => {
                out.extend_from_slice(&cum_tsn.to_be_bytes());
                out.extend_from_slice(&a_rwnd.to_be_bytes());
                out.extend_from_slice(&0u16.to_be_bytes()); // gap blocks
                out.extend_from_slice(&0u16.to_be_bytes()); // dup TSNs
            }
            Chunk::Heartbeat { info } | Chunk::HeartbeatAck { info } => {
                out.extend_from_slice(&1u16.to_be_bytes()); // param: heartbeat info
                out.extend_from_slice(&((4 + info.len()) as u16).to_be_bytes());
                out.extend_from_slice(info);
            }
            Chunk::Shutdown { cum_tsn } => out.extend_from_slice(&cum_tsn.to_be_bytes()),
            Chunk::CookieEcho { cookie } => out.extend_from_slice(cookie),
            Chunk::Abort | Chunk::ShutdownAck | Chunk::CookieAck | Chunk::ShutdownComplete => {}
        }
    }

    fn parse(ty: u8, value: &[u8]) -> WireResult<Chunk> {
        let need = |n: usize| if value.len() < n { Err(WireError::Truncated) } else { Ok(()) };
        match ty {
            0 => {
                need(12)?;
                Ok(Chunk::Data {
                    tsn: read_u32(value, 0),
                    stream_id: read_u16(value, 4),
                    stream_seq: read_u16(value, 6),
                    ppid: read_u32(value, 8),
                    data: value[12..].to_vec(),
                })
            }
            1 => {
                need(16)?;
                Ok(Chunk::Init {
                    init_tag: read_u32(value, 0),
                    a_rwnd: read_u32(value, 4),
                    outbound_streams: read_u16(value, 8),
                    inbound_streams: read_u16(value, 10),
                    initial_tsn: read_u32(value, 12),
                })
            }
            2 => {
                need(16)?;
                // Find the state-cookie parameter.
                let mut cookie = Vec::new();
                let mut params = &value[16..];
                while params.len() >= 4 {
                    let pty = read_u16(params, 0);
                    let plen = read_u16(params, 2) as usize;
                    if plen < 4 || params.len() < plen {
                        return Err(WireError::Malformed);
                    }
                    if pty == 7 {
                        cookie = params[4..plen].to_vec();
                    }
                    let padded = plen.div_ceil(4) * 4;
                    params = &params[padded.min(params.len())..];
                }
                Ok(Chunk::InitAck {
                    init_tag: read_u32(value, 0),
                    a_rwnd: read_u32(value, 4),
                    outbound_streams: read_u16(value, 8),
                    inbound_streams: read_u16(value, 10),
                    initial_tsn: read_u32(value, 12),
                    cookie,
                })
            }
            3 => {
                need(8)?;
                Ok(Chunk::Sack { cum_tsn: read_u32(value, 0), a_rwnd: read_u32(value, 4) })
            }
            4 | 5 => {
                need(4)?;
                let plen = read_u16(value, 2) as usize;
                if plen < 4 || value.len() < plen {
                    return Err(WireError::Malformed);
                }
                let info = value[4..plen].to_vec();
                Ok(if ty == 4 { Chunk::Heartbeat { info } } else { Chunk::HeartbeatAck { info } })
            }
            6 => Ok(Chunk::Abort),
            7 => {
                need(4)?;
                Ok(Chunk::Shutdown { cum_tsn: read_u32(value, 0) })
            }
            8 => Ok(Chunk::ShutdownAck),
            10 => Ok(Chunk::CookieEcho { cookie: value.to_vec() }),
            11 => Ok(Chunk::CookieAck),
            14 => Ok(Chunk::ShutdownComplete),
            _ => Err(WireError::Malformed),
        }
    }
}

/// A parsed SCTP packet: common header plus chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SctpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Verification tag.
    pub verification_tag: u32,
    /// Chunks, in order.
    pub chunks: Vec<Chunk>,
}

impl SctpRepr {
    /// Parses a packet, verifying the CRC-32c checksum.
    pub fn parse(data: &[u8]) -> WireResult<SctpRepr> {
        if data.len() < COMMON_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut zeroed = data.to_vec();
        zeroed[8..12].fill(0);
        let expect = sctp_checksum(&zeroed);
        if read_u32(data, 8) != expect {
            return Err(WireError::Checksum);
        }
        let mut chunks = Vec::new();
        let mut rest = &data[COMMON_HEADER_LEN..];
        while !rest.is_empty() {
            if rest.len() < 4 {
                return Err(WireError::Truncated);
            }
            let ty = rest[0];
            let len = read_u16(rest, 2) as usize;
            if len < 4 || rest.len() < len {
                return Err(WireError::Malformed);
            }
            chunks.push(Chunk::parse(ty, &rest[4..len])?);
            let padded = len.div_ceil(4) * 4;
            rest = &rest[padded.min(rest.len())..];
        }
        Ok(SctpRepr {
            src_port: read_u16(data, 0),
            dst_port: read_u16(data, 2),
            verification_tag: read_u32(data, 4),
            chunks,
        })
    }

    /// Builds the complete packet with a valid CRC-32c.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; COMMON_HEADER_LEN];
        write_u16(&mut buf, 0, self.src_port);
        write_u16(&mut buf, 2, self.dst_port);
        write_u32(&mut buf, 4, self.verification_tag);
        for chunk in &self.chunks {
            let mut value = Vec::new();
            chunk.emit_value(&mut value);
            let start = buf.len();
            buf.push(chunk.type_code());
            buf.push(0); // flags
            buf.extend_from_slice(&((4 + value.len()) as u16).to_be_bytes());
            buf.extend_from_slice(&value);
            let _ = start;
            while !buf.len().is_multiple_of(4) {
                buf.push(0);
            }
        }
        let ck = sctp_checksum(&buf);
        write_u32(&mut buf, 8, ck);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assoc_header() -> SctpRepr {
        SctpRepr { src_port: 5000, dst_port: 6000, verification_tag: 0xCAFE_BABE, chunks: vec![] }
    }

    #[test]
    fn init_roundtrip() {
        let mut repr = assoc_header();
        repr.verification_tag = 0; // INIT carries vtag 0
        repr.chunks.push(Chunk::Init {
            init_tag: 42,
            a_rwnd: 65536,
            outbound_streams: 10,
            inbound_streams: 10,
            initial_tsn: 1000,
        });
        let buf = repr.emit();
        assert_eq!(SctpRepr::parse(&buf).unwrap(), repr);
    }

    #[test]
    fn init_ack_cookie_roundtrip() {
        let mut repr = assoc_header();
        repr.chunks.push(Chunk::InitAck {
            init_tag: 7,
            a_rwnd: 4096,
            outbound_streams: 1,
            inbound_streams: 1,
            initial_tsn: 55,
            cookie: b"opaque-state-cookie".to_vec(),
        });
        let parsed = SctpRepr::parse(&repr.emit()).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn data_sack_roundtrip() {
        let mut repr = assoc_header();
        repr.chunks.push(Chunk::Data {
            tsn: 1001,
            stream_id: 0,
            stream_seq: 0,
            ppid: 0,
            data: b"hello sctp".to_vec(),
        });
        repr.chunks.push(Chunk::Sack { cum_tsn: 1000, a_rwnd: 65536 });
        assert_eq!(SctpRepr::parse(&repr.emit()).unwrap(), repr);
    }

    #[test]
    fn control_chunks_roundtrip() {
        let mut repr = assoc_header();
        repr.chunks = vec![
            Chunk::CookieEcho { cookie: vec![1, 2, 3] },
            Chunk::CookieAck,
            Chunk::Heartbeat { info: vec![9; 5] },
            Chunk::HeartbeatAck { info: vec![9; 5] },
            Chunk::Shutdown { cum_tsn: 5 },
            Chunk::ShutdownAck,
            Chunk::ShutdownComplete,
            Chunk::Abort,
        ];
        assert_eq!(SctpRepr::parse(&repr.emit()).unwrap(), repr);
    }

    #[test]
    fn checksum_survives_ip_address_rewrite_conceptually() {
        // The §4.3 property: the packet bytes are self-contained; no
        // pseudo-header exists, so validity is independent of IP addresses.
        let mut repr = assoc_header();
        repr.chunks.push(Chunk::CookieAck);
        let buf = repr.emit();
        // Same bytes parse regardless of any notion of src/dst address.
        assert!(SctpRepr::parse(&buf).is_ok());
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut repr = assoc_header();
        repr.chunks.push(Chunk::CookieAck);
        let mut buf = repr.emit();
        buf[0] ^= 1;
        assert_eq!(SctpRepr::parse(&buf), Err(WireError::Checksum));
    }

    #[test]
    fn rejects_truncated_and_malformed() {
        assert_eq!(SctpRepr::parse(&[0u8; 6]), Err(WireError::Truncated));
        // Valid header, garbage chunk length.
        let mut repr = assoc_header();
        repr.chunks.push(Chunk::CookieAck);
        let mut buf = repr.emit();
        buf[14..16].copy_from_slice(&100u16.to_be_bytes()); // chunk len 100 > buffer
        let mut zeroed = buf.clone();
        zeroed[8..12].fill(0);
        let ck = sctp_checksum(&zeroed);
        write_u32(&mut buf, 8, ck);
        assert_eq!(SctpRepr::parse(&buf), Err(WireError::Malformed));
    }
}
