//! Byte-order helpers used by every header codec.
//!
//! All Internet protocols in this project are big-endian on the wire. These
//! helpers panic on out-of-bounds access — header codecs validate buffer
//! length up front (`new_checked`), so a panic here indicates a codec bug.

/// Reads a big-endian `u16` at `off`.
#[inline]
pub fn read_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Reads a big-endian `u32` at `off`.
#[inline]
pub fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Reads a big-endian `u48` (6 bytes) at `off` into the low bits of a `u64`.
#[inline]
pub fn read_u48(buf: &[u8], off: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..6 {
        v = (v << 8) | buf[off + i] as u64;
    }
    v
}

/// Reads a big-endian `u64` at `off`.
#[inline]
pub fn read_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_be_bytes(b)
}

/// Writes a big-endian `u16` at `off`.
#[inline]
pub fn write_u16(buf: &mut [u8], off: usize, value: u16) {
    buf[off..off + 2].copy_from_slice(&value.to_be_bytes());
}

/// Writes a big-endian `u32` at `off`.
#[inline]
pub fn write_u32(buf: &mut [u8], off: usize, value: u32) {
    buf[off..off + 4].copy_from_slice(&value.to_be_bytes());
}

/// Writes the low 48 bits of `value` big-endian at `off`.
#[inline]
pub fn write_u48(buf: &mut [u8], off: usize, value: u64) {
    let b = value.to_be_bytes();
    buf[off..off + 6].copy_from_slice(&b[2..8]);
}

/// Writes a big-endian `u64` at `off`.
#[inline]
pub fn write_u64(buf: &mut [u8], off: usize, value: u64) {
    buf[off..off + 8].copy_from_slice(&value.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_roundtrip() {
        let mut buf = [0u8; 4];
        write_u16(&mut buf, 1, 0xABCD);
        assert_eq!(buf, [0, 0xAB, 0xCD, 0]);
        assert_eq!(read_u16(&buf, 1), 0xABCD);
    }

    #[test]
    fn u32_roundtrip() {
        let mut buf = [0u8; 6];
        write_u32(&mut buf, 2, 0xDEAD_BEEF);
        assert_eq!(read_u32(&buf, 2), 0xDEAD_BEEF);
    }

    #[test]
    fn u48_roundtrip() {
        let mut buf = [0u8; 8];
        write_u48(&mut buf, 0, 0x0000_1234_5678_9ABC);
        assert_eq!(read_u48(&buf, 0), 0x0000_1234_5678_9ABC);
    }

    #[test]
    fn u64_roundtrip() {
        let mut buf = [0u8; 8];
        write_u64(&mut buf, 0, u64::MAX - 5);
        assert_eq!(read_u64(&buf, 0), u64::MAX - 5);
    }
}
