//! Property-based tests of the TCP implementation: arbitrary byte streams
//! must be delivered intact, in order, under arbitrary loss patterns.

use std::net::SocketAddrV4;

use proptest::prelude::*;

use hgw_core::{Duration, Instant};
use hgw_stack::tcp::{TcpConfig, TcpSegment, TcpSocket, TcpState};
use hgw_wire::SeqNumber;

fn addr(last: u8, port: u16) -> SocketAddrV4 {
    SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, last), port)
}

/// A deterministic lossy channel driven by a drop bitmask.
struct Channel {
    drops: Vec<bool>,
    cursor: usize,
}

impl Channel {
    fn deliver(&mut self, seg: &TcpSegment, to: &mut TcpSocket, now: Instant) {
        let drop = self.drops.get(self.cursor).copied().unwrap_or(false);
        self.cursor += 1;
        if !drop {
            to.process(now, &seg.repr, seg.payload());
        }
    }
}

/// Runs both sockets with timers until the stream is fully delivered or the
/// step budget runs out. Returns the bytes the receiver got.
fn run_transfer(stream: &[u8], drops: Vec<bool>, chunk: usize) -> Vec<u8> {
    let mut now = Instant::from_millis(1);
    let cfg = TcpConfig::default();
    let mut a = TcpSocket::client(addr(1, 1000), addr(2, 80), SeqNumber(7), cfg, now);
    // Handshake (lossless; loss applies to the data phase).
    let mut out = Vec::new();
    a.dispatch(now, &mut out);
    let syn = out.pop().unwrap();
    let mut b = TcpSocket::server(addr(2, 80), addr(1, 1000), SeqNumber(99), cfg, &syn.repr, now);
    for _ in 0..4 {
        let mut oa = Vec::new();
        let mut ob = Vec::new();
        a.dispatch(now, &mut oa);
        b.dispatch(now, &mut ob);
        for s in oa {
            b.process(now, &s.repr, s.payload());
        }
        for s in ob {
            a.process(now, &s.repr, s.payload());
        }
    }
    assert_eq!(a.state(), TcpState::Established);

    let mut channel = Channel { drops, cursor: 0 };
    let mut received = Vec::new();
    let mut sent = 0;
    // Event loop with coarse virtual time so RTOs fire.
    for _ in 0..30_000 {
        if sent < stream.len() {
            sent += a.send(&stream[sent..(sent + chunk).min(stream.len())]);
        }
        a.on_timer(now);
        b.on_timer(now);
        let mut oa = Vec::new();
        a.dispatch(now, &mut oa);
        for s in oa {
            channel.deliver(&s, &mut b, now);
        }
        received.extend(b.recv(usize::MAX));
        let mut ob = Vec::new();
        b.dispatch(now, &mut ob);
        for s in ob {
            // ACK path: lossless (loss there only slows things further).
            a.process(now, &s.repr, s.payload());
        }
        if received.len() >= stream.len() && sent >= stream.len() {
            break;
        }
        now += Duration::from_millis(50);
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stream_delivered_intact_under_loss(
        stream in proptest::collection::vec(any::<u8>(), 1..20_000),
        drops in proptest::collection::vec(any::<bool>(), 0..64),
        chunk in 1usize..4096,
    ) {
        // Cap the loss density so forward progress is possible: every
        // fourth slot is forced to deliver.
        let drops: Vec<bool> =
            drops.iter().enumerate().map(|(i, &d)| d && i % 4 != 0).collect();
        let received = run_transfer(&stream, drops, chunk);
        prop_assert_eq!(received.len(), stream.len(), "length mismatch");
        prop_assert_eq!(received, stream, "stream corrupted");
    }

    #[test]
    fn lossless_stream_always_arrives(
        stream in proptest::collection::vec(any::<u8>(), 1..40_000),
        chunk in 1usize..8192,
    ) {
        let received = run_transfer(&stream, Vec::new(), chunk);
        prop_assert_eq!(received, stream);
    }
}
