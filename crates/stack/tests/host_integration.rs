//! End-to-end tests of two `Host`s talking over a simulated link — every
//! protocol the testbed uses, without a gateway in the middle yet.

use std::net::{Ipv4Addr, SocketAddrV4};

use hgw_core::{Duration, LinkConfig, NodeId, PortId, Simulator};
use hgw_stack::dns::DnsZone;
use hgw_stack::host::{Host, ListenerApp};
use hgw_stack::iface::IfaceConfig;
use hgw_stack::sctp::SctpState;
use hgw_stack::tcp::TcpState;
use hgw_wire::dns::DnsMessage;
use hgw_wire::icmp::IcmpRepr;

const A_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const B_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);

fn two_hosts() -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(42);
    let mut a = Host::new("client");
    a.add_iface(PortId(0), IfaceConfig::new(A_ADDR, 24));
    let mut b = Host::new("server");
    b.add_iface(PortId(0), IfaceConfig::new(B_ADDR, 24));
    let a = sim.add_node(Box::new(a));
    let b = sim.add_node(Box::new(b));
    sim.connect(a, PortId(0), b, PortId(0), LinkConfig::ethernet_100m());
    sim.boot();
    (sim, a, b)
}

#[test]
fn udp_round_trip() {
    let (mut sim, a, b) = two_hosts();
    let hb = sim.with_node::<Host, _>(b, |h, _| {
        let hb = h.udp_bind(7000);
        h.udp_set_echo(hb, true);
        hb
    });
    let ha = sim.with_node::<Host, _>(a, |h, ctx| {
        let ha = h.udp_bind_ephemeral();
        h.udp_send(ctx, ha, SocketAddrV4::new(B_ADDR, 7000), b"ping-udp");
        ha
    });
    sim.run_for(Duration::from_millis(10));
    let got = sim.with_node::<Host, _>(a, |h, _| h.udp_recv(ha));
    let (from, data) = got.expect("echo reply");
    assert_eq!(from, SocketAddrV4::new(B_ADDR, 7000));
    assert_eq!(data, b"ping-udp");
    // Server saw it too.
    let seen = sim.with_node::<Host, _>(b, |h, _| h.udp_recv(hb));
    assert_eq!(seen.unwrap().1, b"ping-udp");
}

#[test]
fn udp_to_closed_port_generates_port_unreachable() {
    let (mut sim, a, _b) = two_hosts();
    sim.with_node::<Host, _>(a, |h, ctx| {
        let ha = h.udp_bind_ephemeral();
        h.udp_send(ctx, ha, SocketAddrV4::new(B_ADDR, 9999), b"nobody-home");
    });
    sim.run_for(Duration::from_millis(10));
    let events = sim.with_node::<Host, _>(a, |h, _| h.icmp_take_events());
    assert_eq!(events.len(), 1);
    assert!(matches!(
        events[0].message,
        IcmpRepr::DestUnreachable { code: hgw_wire::icmp::UnreachCode::PortUnreachable, .. }
    ));
    let emb = events[0].embedded.as_ref().expect("embedded packet parsed");
    assert_eq!(emb.src, A_ADDR);
    assert_eq!(emb.dst_port, 9999);
    assert!(emb.ip_checksum_ok);
    assert_eq!(emb.l4_checksum_ok, Some(true));
}

#[test]
fn tcp_connect_transfer_close() {
    let (mut sim, a, b) = two_hosts();
    sim.with_node::<Host, _>(b, |h, _| h.tcp_listen(80, ListenerApp::Echo));
    let ha =
        sim.with_node::<Host, _>(a, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(B_ADDR, 80)));
    sim.run_for(Duration::from_millis(50));
    assert_eq!(sim.with_node::<Host, _>(a, |h, _| h.tcp(ha).state()), TcpState::Established);
    sim.with_node::<Host, _>(a, |h, ctx| {
        h.tcp_send(ctx, ha, b"GET / HTTP/1.0\r\n\r\n");
    });
    sim.run_for(Duration::from_millis(50));
    let echoed = sim.with_node::<Host, _>(a, |h, _| h.tcp_recv(ha, 1000));
    assert_eq!(echoed, b"GET / HTTP/1.0\r\n\r\n");
    // Orderly close.
    sim.with_node::<Host, _>(a, |h, ctx| h.tcp_close(ctx, ha));
    sim.run_for(Duration::from_millis(50));
    let state = sim.with_node::<Host, _>(a, |h, _| h.tcp(ha).state());
    assert!(matches!(state, TcpState::FinWait2 | TcpState::TimeWait), "got {state:?}");
}

#[test]
fn tcp_bulk_transfer_saturates_link() {
    let (mut sim, a, b) = two_hosts();
    sim.with_node::<Host, _>(b, |h, _| h.tcp_listen(5001, ListenerApp::Manual));
    let ha =
        sim.with_node::<Host, _>(a, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(B_ADDR, 5001)));
    sim.run_for(Duration::from_millis(20));
    let hb = sim.with_node::<Host, _>(b, |h, _| {
        let acc = h.tcp_accepted();
        assert_eq!(acc.len(), 1);
        acc[0]
    });
    const TOTAL: u64 = 2 * 1024 * 1024;
    sim.with_node::<Host, _>(b, |h, _| h.tcp_mut(hb).set_sink(2048));
    sim.with_node::<Host, _>(a, |h, ctx| {
        h.tcp_mut(ha).set_bulk_source(TOTAL, 2048);
        h.kick(ctx);
    });
    let start = sim.now();
    // Run up to 10 simulated seconds; the transfer should finish well before.
    for _ in 0..100 {
        sim.run_for(Duration::from_millis(100));
        let done =
            sim.with_node::<Host, _>(b, |h, _| h.tcp(hb).sink_stats().unwrap().bytes >= TOTAL);
        if done {
            break;
        }
    }
    let stats = sim.with_node::<Host, _>(b, |h, _| h.tcp(hb).sink_stats().unwrap().clone());
    assert_eq!(stats.bytes, TOTAL, "transfer incomplete");
    let elapsed = stats.last_arrival.unwrap() - start;
    let throughput_mbps = TOTAL as f64 * 8.0 / elapsed.as_secs_f64() / 1e6;
    // 100 Mb/s link: expect to get close (>70) but not exceed it.
    assert!(
        throughput_mbps > 70.0 && throughput_mbps <= 100.0,
        "throughput {throughput_mbps:.1} Mb/s"
    );
    assert_eq!(stats.stamps.len() as u64, TOTAL / 2048);
}

#[test]
fn ping_round_trip() {
    let (mut sim, a, _b) = two_hosts();
    sim.with_node::<Host, _>(a, |h, ctx| h.ping(ctx, B_ADDR, 77, 1));
    sim.run_for(Duration::from_millis(10));
    let replies = sim.with_node::<Host, _>(a, |h, _| h.ping_take_replies());
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].1, B_ADDR);
    assert_eq!((replies[0].2, replies[0].3), (77, 1));
}

#[test]
fn sctp_association_and_echo() {
    let (mut sim, a, b) = two_hosts();
    sim.with_node::<Host, _>(b, |h, _| h.sctp_listen(9899));
    let ha =
        sim.with_node::<Host, _>(a, |h, ctx| h.sctp_connect(ctx, SocketAddrV4::new(B_ADDR, 9899)));
    sim.run_for(Duration::from_millis(50));
    assert_eq!(sim.with_node::<Host, _>(a, |h, _| h.sctp(ha).state()), SctpState::Established);
    sim.with_node::<Host, _>(a, |h, ctx| h.sctp_send(ctx, ha, b"sctp data".to_vec()));
    sim.run_for(Duration::from_millis(50));
    let received = sim.with_node::<Host, _>(a, |h, _| h.sctp(ha).received.clone());
    assert_eq!(received, vec![b"sctp data".to_vec()]);
}

#[test]
fn dccp_connect_and_echo() {
    let (mut sim, a, b) = two_hosts();
    sim.with_node::<Host, _>(b, |h, _| h.dccp_listen(5002));
    let ha = sim.with_node::<Host, _>(a, |h, ctx| {
        h.dccp_connect(ctx, SocketAddrV4::new(B_ADDR, 5002), 0x50524F42)
    });
    sim.run_for(Duration::from_millis(50));
    assert_eq!(
        sim.with_node::<Host, _>(a, |h, _| h.dccp(ha).state()),
        hgw_stack::dccp::DccpState::Established
    );
    sim.with_node::<Host, _>(a, |h, ctx| h.dccp_send(ctx, ha, b"dccp data".to_vec()));
    sim.run_for(Duration::from_millis(50));
    let received = sim.with_node::<Host, _>(a, |h, _| h.dccp(ha).received.clone());
    assert_eq!(received, vec![b"dccp data".to_vec()]);
}

#[test]
fn dns_over_udp_and_tcp() {
    let (mut sim, a, b) = two_hosts();
    sim.with_node::<Host, _>(b, |h, _| {
        h.enable_dns_server(DnsZone::testbed_default(B_ADDR));
    });
    // UDP query.
    let ha = sim.with_node::<Host, _>(a, |h, ctx| {
        let ha = h.udp_bind_ephemeral();
        let q = DnsMessage::query_a(0x5544, "server.hiit.fi");
        h.udp_send(ctx, ha, SocketAddrV4::new(B_ADDR, 53), &q.emit());
        ha
    });
    sim.run_for(Duration::from_millis(10));
    let (_, resp) = sim.with_node::<Host, _>(a, |h, _| h.udp_recv(ha)).expect("udp dns reply");
    let msg = DnsMessage::parse(&resp).unwrap();
    assert_eq!(msg.id, 0x5544);
    assert_eq!(msg.answers.len(), 1);

    // TCP query.
    let ht =
        sim.with_node::<Host, _>(a, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(B_ADDR, 53)));
    sim.run_for(Duration::from_millis(20));
    sim.with_node::<Host, _>(a, |h, ctx| {
        let q = DnsMessage::query_a(0x7788, "www.hiit.fi").emit_tcp();
        h.tcp_send(ctx, ht, &q);
    });
    sim.run_for(Duration::from_millis(50));
    let data = sim.with_node::<Host, _>(a, |h, _| h.tcp_recv(ht, 4096));
    let (tmsg, _) = DnsMessage::parse_tcp(&data).expect("framed response");
    assert_eq!(tmsg.id, 0x7788);
    assert_eq!(tmsg.answers.len(), 1);
}

#[test]
fn dhcp_configures_client_iface() {
    let mut sim = Simulator::new(7);
    let mut server = Host::new("dhcp-server");
    server.add_iface(PortId(0), IfaceConfig::new(Ipv4Addr::new(10, 0, 3, 1), 24));
    server.enable_dhcp_server(
        PortId(0),
        hgw_stack::dhcp::DhcpServerConfig {
            server_addr: Ipv4Addr::new(10, 0, 3, 1),
            pool_start: Ipv4Addr::new(10, 0, 3, 100),
            pool_size: 10,
            subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
            router: None,
            dns_servers: vec![Ipv4Addr::new(10, 0, 3, 1)],
            lease_secs: 3600,
        },
    );
    let mut client = Host::new("dhcp-client");
    client.enable_dhcp_client(PortId(0), [2, 0, 0, 0, 0, 5]);
    let s = sim.add_node(Box::new(server));
    let c = sim.add_node(Box::new(client));
    sim.connect(c, PortId(0), s, PortId(0), LinkConfig::ethernet_100m());
    sim.boot();
    sim.run_for(Duration::from_secs(2));
    let lease = sim.with_node::<Host, _>(c, |h, _| h.dhcp_lease().cloned()).expect("bound");
    assert_eq!(lease.addr, Ipv4Addr::new(10, 0, 3, 100));
    assert_eq!(lease.router, Some(Ipv4Addr::new(10, 0, 3, 1)));
    // The lease is installed: the client can now ping the server.
    sim.with_node::<Host, _>(c, |h, ctx| h.ping(ctx, Ipv4Addr::new(10, 0, 3, 1), 5, 5));
    sim.run_for(Duration::from_millis(10));
    let replies = sim.with_node::<Host, _>(c, |h, _| h.ping_take_replies());
    assert_eq!(replies.len(), 1);
}

#[test]
fn tcp_syn_to_closed_port_gets_rst() {
    let (mut sim, a, _b) = two_hosts();
    let ha =
        sim.with_node::<Host, _>(a, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(B_ADDR, 4444)));
    sim.run_for(Duration::from_millis(20));
    let (state, err) = sim.with_node::<Host, _>(a, |h, _| (h.tcp(ha).state(), h.tcp(ha).error()));
    assert_eq!(state, TcpState::Closed);
    assert_eq!(err, Some(hgw_stack::tcp::TcpError::Reset));
}

#[test]
fn many_parallel_tcp_connections() {
    let (mut sim, a, b) = two_hosts();
    sim.with_node::<Host, _>(b, |h, _| h.tcp_listen(6000, ListenerApp::Echo));
    let mut handles = Vec::new();
    for _ in 0..100 {
        let h = sim
            .with_node::<Host, _>(a, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(B_ADDR, 6000)));
        handles.push(h);
        sim.run_for(Duration::from_millis(2));
    }
    sim.run_for(Duration::from_millis(200));
    let established = sim.with_node::<Host, _>(a, |h, _| {
        handles.iter().filter(|&&x| h.tcp(x).state() == TcpState::Established).count()
    });
    assert_eq!(established, 100);
    // Pass a message over each.
    sim.with_node::<Host, _>(a, |h, ctx| {
        for &x in &handles {
            h.tcp_send(ctx, x, b"msg");
        }
    });
    sim.run_for(Duration::from_millis(200));
    let echoed = sim.with_node::<Host, _>(a, |h, _| {
        handles.iter().filter(|&&x| h.tcp_mut(x).recv(10) == b"msg").count()
    });
    assert_eq!(echoed, 100);
}
