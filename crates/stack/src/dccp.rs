//! A minimal DCCP endpoint: Request/Response/Ack handshake and DataAck
//! exchange — the connectivity probe of §3.2.3.
//!
//! The paper found no gateway that passes DCCP; this endpoint is what
//! demonstrates that, because its packets' pseudo-header checksums break
//! under IP-only rewriting and its protocol number (33) is unknown to
//! every gateway's NAT engine.

use hgw_core::{Duration, Instant};
use hgw_wire::dccp::{DccpRepr, DccpType};

/// Connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DccpState {
    /// Nothing sent.
    Closed,
    /// REQUEST sent.
    RequestSent,
    /// Handshake complete.
    Established,
    /// CLOSE sent.
    Closing,
    /// Gracefully closed.
    Done,
    /// Setup gave up.
    Failed,
}

const MAX_RETRIES: u32 = 4;
const RTX_INTERVAL: Duration = Duration::from_secs(2);

/// A client-side DCCP connection endpoint.
#[derive(Debug)]
pub struct DccpEndpoint {
    /// Local port.
    pub local_port: u16,
    /// Remote port.
    pub remote_port: u16,
    /// Service code sent in REQUEST.
    pub service_code: u32,
    state: DccpState,
    seq: u64,
    peer_seq: u64,
    /// Payloads received.
    pub received: Vec<Vec<u8>>,
    tx_queue: Vec<Vec<u8>>,
    rtx_deadline: Option<Instant>,
    retries: u32,
    outbox: Vec<DccpRepr>,
}

impl DccpEndpoint {
    /// Creates a client endpoint; call [`DccpEndpoint::start`] to emit the
    /// REQUEST.
    pub fn client(local_port: u16, remote_port: u16, service_code: u32, iss: u64) -> DccpEndpoint {
        DccpEndpoint {
            local_port,
            remote_port,
            service_code,
            state: DccpState::Closed,
            seq: iss & 0xFFFF_FFFF_FFFF,
            peer_seq: 0,
            received: Vec::new(),
            tx_queue: Vec::new(),
            rtx_deadline: None,
            retries: 0,
            outbox: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> DccpState {
        self.state
    }

    /// Begins the handshake.
    pub fn start(&mut self, now: Instant) {
        debug_assert_eq!(self.state, DccpState::Closed);
        self.state = DccpState::RequestSent;
        self.push_request();
        self.rtx_deadline = Some(now + RTX_INTERVAL);
    }

    fn push_request(&mut self) {
        self.outbox.push(DccpRepr {
            src_port: self.local_port,
            dst_port: self.remote_port,
            packet_type: DccpType::Request,
            seq: self.seq,
            ack: None,
            service_code: Some(self.service_code),
            payload: Vec::new(),
        });
    }

    /// Next deadline, if any.
    pub fn poll_at(&self) -> Option<Instant> {
        self.rtx_deadline
    }

    /// Handles timer expiry.
    pub fn on_timer(&mut self, now: Instant) {
        let Some(t) = self.rtx_deadline else { return };
        if now < t {
            return;
        }
        self.rtx_deadline = None;
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            if self.state == DccpState::RequestSent || self.state == DccpState::Closing {
                self.state = DccpState::Failed;
            }
            return;
        }
        if self.state == DccpState::RequestSent {
            self.push_request();
            self.rtx_deadline = Some(now + RTX_INTERVAL);
        }
    }

    /// Queues application data.
    pub fn send(&mut self, data: Vec<u8>) {
        self.tx_queue.push(data);
        if self.state == DccpState::Established {
            self.flush();
        }
    }

    fn flush(&mut self) {
        while let Some(data) =
            if self.tx_queue.is_empty() { None } else { Some(self.tx_queue.remove(0)) }
        {
            self.seq = (self.seq + 1) & 0xFFFF_FFFF_FFFF;
            self.outbox.push(DccpRepr {
                src_port: self.local_port,
                dst_port: self.remote_port,
                packet_type: DccpType::DataAck,
                seq: self.seq,
                ack: Some(self.peer_seq),
                service_code: None,
                payload: data,
            });
        }
    }

    /// Processes a packet addressed to this connection.
    pub fn process(&mut self, _now: Instant, packet: &DccpRepr) {
        match packet.packet_type {
            DccpType::Response
                if self.state == DccpState::RequestSent && packet.ack == Some(self.seq) =>
            {
                self.peer_seq = packet.seq;
                self.state = DccpState::Established;
                self.rtx_deadline = None;
                // Complete the three-way handshake with an ACK.
                self.seq = (self.seq + 1) & 0xFFFF_FFFF_FFFF;
                self.outbox.push(DccpRepr {
                    src_port: self.local_port,
                    dst_port: self.remote_port,
                    packet_type: DccpType::Ack,
                    seq: self.seq,
                    ack: Some(self.peer_seq),
                    service_code: None,
                    payload: Vec::new(),
                });
                self.flush();
            }
            DccpType::Data | DccpType::DataAck if self.state == DccpState::Established => {
                self.peer_seq = packet.seq;
                self.received.push(packet.payload.clone());
            }
            DccpType::Reset => {
                self.state = DccpState::Failed;
                self.rtx_deadline = None;
            }
            DccpType::CloseReq | DccpType::Close => {
                self.state = DccpState::Done;
                self.rtx_deadline = None;
            }
            _ => {}
        }
    }

    /// Drains packets ready for transmission.
    pub fn dispatch(&mut self) -> Vec<DccpRepr> {
        std::mem::take(&mut self.outbox)
    }
}

/// Server-side connection bookkeeping for a listening host.
#[derive(Debug)]
pub struct DccpServerConn {
    /// Our next sequence number.
    pub seq: u64,
    /// Peer's last sequence number.
    pub peer_seq: u64,
    /// Fully established (three-way handshake done).
    pub established: bool,
    /// Data received.
    pub received: Vec<Vec<u8>>,
    /// Echo received data back.
    pub echo: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_react(pkt: &DccpRepr, conn: &mut Option<DccpServerConn>) -> Vec<DccpRepr> {
        let mut out = Vec::new();
        match pkt.packet_type {
            DccpType::Request => {
                let c = conn.get_or_insert(DccpServerConn {
                    seq: 900,
                    peer_seq: pkt.seq,
                    established: false,
                    received: Vec::new(),
                    echo: true,
                });
                out.push(DccpRepr {
                    src_port: pkt.dst_port,
                    dst_port: pkt.src_port,
                    packet_type: DccpType::Response,
                    seq: c.seq,
                    ack: Some(pkt.seq),
                    service_code: pkt.service_code,
                    payload: Vec::new(),
                });
            }
            DccpType::Ack => {
                if let Some(c) = conn {
                    c.established = true;
                    c.peer_seq = pkt.seq;
                }
            }
            DccpType::Data | DccpType::DataAck => {
                if let Some(c) = conn {
                    c.established = true;
                    c.peer_seq = pkt.seq;
                    c.received.push(pkt.payload.clone());
                    if c.echo {
                        c.seq += 1;
                        out.push(DccpRepr {
                            src_port: pkt.dst_port,
                            dst_port: pkt.src_port,
                            packet_type: DccpType::DataAck,
                            seq: c.seq,
                            ack: Some(c.peer_seq),
                            service_code: None,
                            payload: pkt.payload.clone(),
                        });
                    }
                }
            }
            _ => {}
        }
        out
    }

    #[test]
    fn handshake_and_echo() {
        let now = Instant::ZERO;
        let mut client = DccpEndpoint::client(40000, 5001, 0x68677770, 10);
        let mut conn = None;
        client.start(now);
        client.send(b"dccp probe".to_vec());
        for _ in 0..8 {
            let out = client.dispatch();
            if out.is_empty() {
                break;
            }
            for pkt in out {
                for reply in server_react(&pkt, &mut conn) {
                    client.process(now, &reply);
                }
            }
        }
        assert_eq!(client.state(), DccpState::Established);
        assert!(conn.as_ref().unwrap().established);
        assert_eq!(conn.as_ref().unwrap().received, vec![b"dccp probe".to_vec()]);
        assert_eq!(client.received, vec![b"dccp probe".to_vec()]);
    }

    #[test]
    fn blackholed_request_fails() {
        let mut client = DccpEndpoint::client(40000, 5001, 1, 10);
        let mut now = Instant::ZERO;
        client.start(now);
        client.dispatch();
        for _ in 0..=MAX_RETRIES {
            now = client.poll_at().unwrap_or(now + RTX_INTERVAL);
            client.on_timer(now);
            client.dispatch();
        }
        assert_eq!(client.state(), DccpState::Failed);
    }

    #[test]
    fn reset_fails_connection() {
        let now = Instant::ZERO;
        let mut client = DccpEndpoint::client(40000, 5001, 1, 10);
        client.start(now);
        client.dispatch();
        client.process(
            now,
            &DccpRepr {
                src_port: 5001,
                dst_port: 40000,
                packet_type: DccpType::Reset,
                seq: 1,
                ack: Some(10),
                service_code: None,
                payload: Vec::new(),
            },
        );
        assert_eq!(client.state(), DccpState::Failed);
    }
}
