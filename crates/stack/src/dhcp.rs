//! DHCP server and client state machines.
//!
//! Figure 1 of the paper: the test server leases each gateway its WAN
//! address from a per-VLAN private block, and each gateway's built-in DHCP
//! server configures the test client's VLAN interface. Both sides are
//! implemented here and reused by hosts and gateways.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use hgw_core::{Duration, Instant};
use hgw_wire::dhcp::{DhcpMessage, DhcpMessageType};

/// Configuration of a DHCP server instance.
#[derive(Debug, Clone)]
pub struct DhcpServerConfig {
    /// The server's own address (also offered as router unless overridden).
    pub server_addr: Ipv4Addr,
    /// First address of the lease pool.
    pub pool_start: Ipv4Addr,
    /// Number of addresses in the pool.
    pub pool_size: u32,
    /// Subnet mask to hand out.
    pub subnet_mask: Ipv4Addr,
    /// Router option; defaults to `server_addr` when `None`.
    pub router: Option<Ipv4Addr>,
    /// DNS servers to hand out.
    pub dns_servers: Vec<Ipv4Addr>,
    /// Lease duration in seconds.
    pub lease_secs: u32,
}

/// A DHCP server: answers DISCOVER with OFFER and REQUEST with ACK.
#[derive(Debug)]
pub struct DhcpServer {
    /// Server configuration.
    pub config: DhcpServerConfig,
    leases: HashMap<[u8; 6], Ipv4Addr>,
    next_index: u32,
}

impl DhcpServer {
    /// Creates a server.
    pub fn new(config: DhcpServerConfig) -> DhcpServer {
        DhcpServer { config, leases: HashMap::new(), next_index: 0 }
    }

    /// Currently held leases.
    pub fn leases(&self) -> &HashMap<[u8; 6], Ipv4Addr> {
        &self.leases
    }

    fn allocate(&mut self, chaddr: [u8; 6]) -> Option<Ipv4Addr> {
        if let Some(addr) = self.leases.get(&chaddr) {
            return Some(*addr);
        }
        if self.next_index >= self.config.pool_size {
            return None;
        }
        let base = u32::from(self.config.pool_start);
        let addr = Ipv4Addr::from(base + self.next_index);
        self.next_index += 1;
        self.leases.insert(chaddr, addr);
        Some(addr)
    }

    /// Processes a client message, returning the reply (if any).
    pub fn process(&mut self, msg: &DhcpMessage) -> Option<DhcpMessage> {
        if !msg.is_request_op {
            return None;
        }
        let reply_type = match msg.message_type {
            DhcpMessageType::Discover => DhcpMessageType::Offer,
            DhcpMessageType::Request => {
                // Only answer requests addressed to us (or with no server id).
                if let Some(sid) = msg.server_id {
                    if sid != self.config.server_addr {
                        return None;
                    }
                }
                DhcpMessageType::Ack
            }
            DhcpMessageType::Release => {
                self.leases.remove(&msg.chaddr);
                return None;
            }
            _ => return None,
        };
        let addr = match self.allocate(msg.chaddr) {
            Some(a) => a,
            None => {
                let mut nak = DhcpMessage::discover(msg.xid, msg.chaddr);
                nak.message_type = DhcpMessageType::Nak;
                nak.is_request_op = false;
                nak.server_id = Some(self.config.server_addr);
                return Some(nak);
            }
        };
        let mut reply = DhcpMessage::discover(msg.xid, msg.chaddr);
        reply.message_type = reply_type;
        reply.is_request_op = false;
        reply.your_addr = addr;
        reply.server_addr = self.config.server_addr;
        reply.server_id = Some(self.config.server_addr);
        reply.lease_secs = Some(self.config.lease_secs);
        reply.subnet_mask = Some(self.config.subnet_mask);
        reply.router = Some(self.config.router.unwrap_or(self.config.server_addr));
        reply.dns_servers = self.config.dns_servers.clone();
        Some(reply)
    }
}

/// DHCP client states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpClientState {
    /// Sending DISCOVER.
    Selecting,
    /// Sending REQUEST for an offer.
    Requesting,
    /// Lease acquired.
    Bound,
}

/// The lease a client obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpLease {
    /// Our address.
    pub addr: Ipv4Addr,
    /// Subnet mask.
    pub subnet_mask: Ipv4Addr,
    /// Default router, if offered.
    pub router: Option<Ipv4Addr>,
    /// DNS servers offered.
    pub dns_servers: Vec<Ipv4Addr>,
    /// Lease duration.
    pub lease_secs: u32,
    /// The server that granted the lease.
    pub server: Ipv4Addr,
}

/// A DHCP client state machine.
#[derive(Debug)]
pub struct DhcpClient {
    /// Our hardware address.
    pub chaddr: [u8; 6],
    xid: u32,
    state: DhcpClientState,
    offer: Option<DhcpMessage>,
    /// The acquired lease once bound.
    pub lease: Option<DhcpLease>,
    rtx_deadline: Option<Instant>,
    outbox: Vec<DhcpMessage>,
    auto_renew: bool,
    /// Lease renewals completed (ACKs received while already bound).
    pub renewals: u64,
}

const RTX_INTERVAL: Duration = Duration::from_secs(3);

impl DhcpClient {
    /// Creates a client; call [`DhcpClient::start`] to begin.
    pub fn new(chaddr: [u8; 6], xid: u32) -> DhcpClient {
        DhcpClient {
            chaddr,
            xid,
            state: DhcpClientState::Selecting,
            offer: None,
            lease: None,
            rtx_deadline: None,
            outbox: Vec::new(),
            auto_renew: false,
            renewals: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> DhcpClientState {
        self.state
    }

    /// Enables lease renewal: once bound, the client re-REQUESTs its
    /// address at T1 (half the lease), per RFC 2131 §4.4.5. Off by default
    /// so the seed testbed's event sequence is untouched (its probes never
    /// run a lease-length of virtual time, but household runs may).
    pub fn set_auto_renew(&mut self, on: bool) {
        self.auto_renew = on;
    }

    /// Begins address acquisition.
    pub fn start(&mut self, now: Instant) {
        self.outbox.push(DhcpMessage::discover(self.xid, self.chaddr));
        self.rtx_deadline = Some(now + RTX_INTERVAL);
    }

    /// Next deadline, if any.
    pub fn poll_at(&self) -> Option<Instant> {
        self.rtx_deadline
    }

    /// Handles timer expiry: retransmit the current message.
    pub fn on_timer(&mut self, now: Instant) {
        let Some(t) = self.rtx_deadline else { return };
        if now < t {
            return;
        }
        match self.state {
            DhcpClientState::Selecting => {
                self.outbox.push(DhcpMessage::discover(self.xid, self.chaddr));
                self.rtx_deadline = Some(now + RTX_INTERVAL);
            }
            DhcpClientState::Requesting => {
                if let Some(offer) = self.offer.clone() {
                    self.push_request(&offer);
                }
                self.rtx_deadline = Some(now + RTX_INTERVAL);
            }
            DhcpClientState::Bound => {
                if self.auto_renew && self.lease.is_some() {
                    // T1 renewal: re-REQUEST our own address from the
                    // granting server; retry on the DORA cadence until the
                    // ACK pushes the deadline out to the next half-lease.
                    self.push_renewal();
                    self.rtx_deadline = Some(now + RTX_INTERVAL);
                } else {
                    self.rtx_deadline = None;
                }
            }
        }
    }

    fn push_renewal(&mut self) {
        let Some(lease) = &self.lease else { return };
        let mut req = DhcpMessage::discover(self.xid, self.chaddr);
        req.message_type = DhcpMessageType::Request;
        req.requested_ip = Some(lease.addr);
        req.server_id = Some(lease.server);
        self.outbox.push(req);
    }

    /// The renewal deadline the client will act on in the Bound state, if
    /// auto-renew is enabled (half the lease, measured from the ACK).
    fn renew_deadline(&self, now: Instant) -> Option<Instant> {
        if !self.auto_renew {
            return None;
        }
        let lease = self.lease.as_ref()?;
        Some(now + Duration::from_secs(u64::from(lease.lease_secs) / 2))
    }

    fn push_request(&mut self, offer: &DhcpMessage) {
        let mut req = DhcpMessage::discover(self.xid, self.chaddr);
        req.message_type = DhcpMessageType::Request;
        req.requested_ip = Some(offer.your_addr);
        req.server_id = offer.server_id;
        self.outbox.push(req);
    }

    /// Processes a server message.
    pub fn process(&mut self, now: Instant, msg: &DhcpMessage) {
        if msg.is_request_op || msg.xid != self.xid || msg.chaddr != self.chaddr {
            return;
        }
        match (self.state, msg.message_type) {
            (DhcpClientState::Selecting, DhcpMessageType::Offer) => {
                self.offer = Some(msg.clone());
                self.state = DhcpClientState::Requesting;
                let offer = msg.clone();
                self.push_request(&offer);
                self.rtx_deadline = Some(now + RTX_INTERVAL);
            }
            (DhcpClientState::Requesting, DhcpMessageType::Ack) => {
                self.lease = Some(DhcpLease {
                    addr: msg.your_addr,
                    subnet_mask: msg.subnet_mask.unwrap_or(Ipv4Addr::new(255, 255, 255, 0)),
                    router: msg.router,
                    dns_servers: msg.dns_servers.clone(),
                    lease_secs: msg.lease_secs.unwrap_or(3600),
                    server: msg.server_id.unwrap_or(msg.server_addr),
                });
                self.state = DhcpClientState::Bound;
                self.rtx_deadline = self.renew_deadline(now);
            }
            (DhcpClientState::Bound, DhcpMessageType::Ack) => {
                if let Some(lease) = &mut self.lease {
                    // Renewal ACK: same address (the server allocates by
                    // chaddr), refreshed clock.
                    lease.lease_secs = msg.lease_secs.unwrap_or(lease.lease_secs);
                    self.renewals += 1;
                    self.rtx_deadline = self.renew_deadline(now);
                }
            }
            (_, DhcpMessageType::Nak) => {
                self.state = DhcpClientState::Selecting;
                self.offer = None;
                self.outbox.push(DhcpMessage::discover(self.xid, self.chaddr));
                self.rtx_deadline = Some(now + RTX_INTERVAL);
            }
            _ => {}
        }
    }

    /// Drains messages ready for transmission (sent to 255.255.255.255
    /// until bound).
    pub fn dispatch(&mut self) -> Vec<DhcpMessage> {
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> DhcpServer {
        DhcpServer::new(DhcpServerConfig {
            server_addr: Ipv4Addr::new(10, 0, 1, 1),
            pool_start: Ipv4Addr::new(10, 0, 1, 100),
            pool_size: 3,
            subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
            router: None,
            dns_servers: vec![Ipv4Addr::new(10, 0, 1, 1)],
            lease_secs: 86_400,
        })
    }

    #[test]
    fn full_dora_exchange() {
        let now = Instant::ZERO;
        let mut srv = server();
        let mut cli = DhcpClient::new([2, 0, 0, 0, 0, 1], 0x1234);
        cli.start(now);
        for _ in 0..4 {
            let msgs = cli.dispatch();
            if msgs.is_empty() {
                break;
            }
            for m in msgs {
                if let Some(reply) = srv.process(&m) {
                    cli.process(now, &reply);
                }
            }
        }
        assert_eq!(cli.state(), DhcpClientState::Bound);
        let lease = cli.lease.as_ref().unwrap();
        assert_eq!(lease.addr, Ipv4Addr::new(10, 0, 1, 100));
        assert_eq!(lease.router, Some(Ipv4Addr::new(10, 0, 1, 1)));
        assert_eq!(lease.dns_servers, vec![Ipv4Addr::new(10, 0, 1, 1)]);
    }

    #[test]
    fn same_client_gets_same_address() {
        let mut srv = server();
        let d = DhcpMessage::discover(1, [9; 6]);
        let offer1 = srv.process(&d).unwrap();
        let offer2 = srv.process(&d).unwrap();
        assert_eq!(offer1.your_addr, offer2.your_addr);
    }

    #[test]
    fn pool_exhaustion_naks() {
        let mut srv = server();
        for i in 0..3u8 {
            let d = DhcpMessage::discover(1, [i; 6]);
            assert_eq!(srv.process(&d).unwrap().message_type, DhcpMessageType::Offer);
        }
        let d = DhcpMessage::discover(1, [99; 6]);
        assert_eq!(srv.process(&d).unwrap().message_type, DhcpMessageType::Nak);
    }

    #[test]
    fn request_to_other_server_ignored() {
        let mut srv = server();
        let mut req = DhcpMessage::discover(1, [1; 6]);
        req.message_type = DhcpMessageType::Request;
        req.server_id = Some(Ipv4Addr::new(10, 9, 9, 9));
        assert!(srv.process(&req).is_none());
    }

    #[test]
    fn discover_retransmits_until_answered() {
        let mut cli = DhcpClient::new([1; 6], 7);
        let mut now = Instant::ZERO;
        cli.start(now);
        assert_eq!(cli.dispatch().len(), 1);
        now = cli.poll_at().unwrap();
        cli.on_timer(now);
        assert_eq!(cli.dispatch().len(), 1, "DISCOVER should be retransmitted");
        assert_eq!(cli.state(), DhcpClientState::Selecting);
    }

    #[test]
    fn auto_renew_rerequests_at_half_lease() {
        let mut srv = server();
        let mut cli = DhcpClient::new([2, 0, 0, 0, 0, 1], 0x99);
        cli.set_auto_renew(true);
        let mut now = Instant::ZERO;
        cli.start(now);
        for _ in 0..4 {
            for m in cli.dispatch() {
                if let Some(reply) = srv.process(&m) {
                    cli.process(now, &reply);
                }
            }
        }
        assert_eq!(cli.state(), DhcpClientState::Bound);
        let addr = cli.lease.as_ref().unwrap().addr;
        // T1 = lease/2 from the ACK.
        let t1 = cli.poll_at().expect("renewal timer armed");
        assert_eq!(t1, Instant::ZERO + Duration::from_secs(86_400 / 2));
        // Fire T1: a unicast-style REQUEST for our own address goes out.
        now = t1;
        cli.on_timer(now);
        let msgs = cli.dispatch();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].message_type, DhcpMessageType::Request);
        assert_eq!(msgs[0].requested_ip, Some(addr));
        // The server ACKs the same address; the next T1 is re-armed.
        let ack = srv.process(&msgs[0]).unwrap();
        cli.process(now, &ack);
        assert_eq!(cli.renewals, 1);
        assert_eq!(cli.lease.as_ref().unwrap().addr, addr);
        assert_eq!(cli.poll_at(), Some(now + Duration::from_secs(86_400 / 2)));
    }

    #[test]
    fn without_auto_renew_bound_disarms_timers() {
        let mut srv = server();
        let mut cli = DhcpClient::new([2, 0, 0, 0, 0, 2], 0x77);
        let now = Instant::ZERO;
        cli.start(now);
        for _ in 0..4 {
            for m in cli.dispatch() {
                if let Some(reply) = srv.process(&m) {
                    cli.process(now, &reply);
                }
            }
        }
        assert_eq!(cli.state(), DhcpClientState::Bound);
        assert_eq!(cli.poll_at(), None, "seed behavior: no timers once bound");
    }

    #[test]
    fn release_frees_nothing_but_removes_lease() {
        let mut srv = server();
        let d = DhcpMessage::discover(1, [5; 6]);
        srv.process(&d).unwrap();
        assert_eq!(srv.leases().len(), 1);
        let mut rel = DhcpMessage::discover(1, [5; 6]);
        rel.message_type = DhcpMessageType::Release;
        assert!(srv.process(&rel).is_none());
        assert!(srv.leases().is_empty());
    }
}
