//! DNS server zone data and query evaluation.
//!
//! The testbed's `hiit.fi` DNS server (Figure 1) is a [`DnsZone`] attached
//! to the test-server host; it answers over UDP and TCP port 53. Gateways
//! proxy queries to it — or fail to, which is what the DNS experiment
//! records.

use std::net::Ipv4Addr;

use hgw_wire::dns::{DnsMessage, Rcode, Record, RecordData, RecordType};

/// A static zone: name → address mappings.
#[derive(Debug, Clone, Default)]
pub struct DnsZone {
    entries: Vec<(String, Ipv4Addr)>,
    /// TTL for all answers.
    pub ttl: u32,
}

impl DnsZone {
    /// Creates an empty zone with a 300-second TTL.
    pub fn new() -> DnsZone {
        DnsZone { entries: Vec::new(), ttl: 300 }
    }

    /// The zone the testbed uses by default.
    pub fn testbed_default(server_addr: Ipv4Addr) -> DnsZone {
        let mut zone = DnsZone::new();
        zone.insert("server.hiit.fi", server_addr);
        zone.insert("www.hiit.fi", Ipv4Addr::new(10, 99, 0, 80));
        zone.insert("ntp.hiit.fi", Ipv4Addr::new(10, 99, 0, 123));
        zone
    }

    /// Adds a name → address mapping.
    pub fn insert(&mut self, name: &str, addr: Ipv4Addr) {
        self.entries.push((name.to_ascii_lowercase(), addr));
    }

    /// Looks up every address for `name`.
    pub fn lookup(&self, name: &str) -> Vec<Ipv4Addr> {
        let name = name.to_ascii_lowercase();
        self.entries.iter().filter(|(n, _)| *n == name).map(|(_, a)| *a).collect()
    }

    /// Evaluates a query message into a response message.
    pub fn answer(&self, query: &DnsMessage) -> DnsMessage {
        if query.is_response || query.questions.is_empty() {
            return DnsMessage::response_to(query, Vec::new(), Rcode::FormErr);
        }
        let mut answers = Vec::new();
        let mut found_any = false;
        for q in &query.questions {
            let addrs = self.lookup(&q.name);
            if !addrs.is_empty() {
                found_any = true;
            }
            if q.rtype == RecordType::A {
                for addr in addrs {
                    answers.push(Record {
                        name: q.name.clone(),
                        ttl: self.ttl,
                        data: RecordData::A(addr),
                    });
                }
            }
        }
        let rcode = if found_any { Rcode::NoError } else { Rcode::NxDomain };
        DnsMessage::response_to(query, answers, rcode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut zone = DnsZone::new();
        zone.insert("WWW.Example.ORG", Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(zone.lookup("www.example.org"), vec![Ipv4Addr::new(1, 2, 3, 4)]);
    }

    #[test]
    fn answers_a_query() {
        let zone = DnsZone::testbed_default(Ipv4Addr::new(10, 0, 1, 1));
        let q = DnsMessage::query_a(42, "server.hiit.fi");
        let resp = zone.answer(&q);
        assert!(resp.is_response);
        assert_eq!(resp.id, 42);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].data, RecordData::A(Ipv4Addr::new(10, 0, 1, 1)));
    }

    #[test]
    fn nxdomain_for_unknown_names() {
        let zone = DnsZone::testbed_default(Ipv4Addr::new(10, 0, 1, 1));
        let resp = zone.answer(&DnsMessage::query_a(1, "nosuch.example"));
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn multiple_a_records() {
        let mut zone = DnsZone::new();
        zone.insert("multi.example", Ipv4Addr::new(1, 1, 1, 1));
        zone.insert("multi.example", Ipv4Addr::new(2, 2, 2, 2));
        let resp = zone.answer(&DnsMessage::query_a(1, "multi.example"));
        assert_eq!(resp.answers.len(), 2);
    }

    #[test]
    fn rejects_response_as_query() {
        let zone = DnsZone::new();
        let mut q = DnsMessage::query_a(1, "x.y");
        q.is_response = true;
        assert_eq!(zone.answer(&q).rcode, Rcode::FormErr);
    }
}
