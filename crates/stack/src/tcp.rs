//! A complete TCP endpoint: three-way handshake, sliding window, Reno
//! congestion control, RTO with Karn's algorithm, fast retransmit/recovery,
//! zero-window probing, orderly and abortive teardown.
//!
//! Configured like the paper's endpoints (§3.2.2): Linux-style Reno with
//! SACK, timestamps, window scaling, F-RTO and D-SACK disabled. The socket
//! also implements the paper's workload apps: a *bulk source* that emits a
//! byte stream with a virtual timestamp every 2 KB (TCP-2/TCP-3) and a
//! *sink* that extracts those timestamps on arrival.

use std::collections::BTreeMap;
use std::net::SocketAddrV4;

use hgw_core::{Duration, Instant};
use hgw_wire::tcp::{TcpOption, TcpRepr};
use hgw_wire::{SeqNumber, TcpFlags};

use crate::bytes::ByteQueue;

/// TCP connection states (RFC 793).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Active open sent SYN.
    SynSent,
    /// Passive open got SYN, sent SYN-ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent.
    FinWait1,
    /// Our FIN acked; waiting for peer FIN.
    FinWait2,
    /// Simultaneous close.
    Closing,
    /// Both FINs seen; draining the network.
    TimeWait,
    /// Peer closed first.
    CloseWait,
    /// Peer closed, then we closed; FIN sent.
    LastAck,
}

impl TcpState {
    /// True in states where application data can still be received.
    pub fn can_recv(self) -> bool {
        matches!(self, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2)
    }

    /// True in states where the application can still send.
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }
}

/// Why a socket reached [`TcpState::Closed`] abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Peer sent a valid RST (or the local side aborted).
    Reset,
    /// Handshake or retransmission gave up.
    TimedOut,
}

/// Socket tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Our maximum segment size (announced in SYN).
    pub mss: u32,
    /// Send buffer capacity, bytes.
    pub send_buf: usize,
    /// Receive buffer capacity, bytes (advertised window, ≤ 65535 since
    /// window scaling is disabled per the paper's setup).
    pub recv_buf: usize,
    /// Initial retransmission timeout.
    pub rto_initial: Duration,
    /// Minimum RTO.
    pub rto_min: Duration,
    /// Maximum RTO (also caps backoff).
    pub rto_max: Duration,
    /// Maximum consecutive retransmissions of one segment before giving up.
    pub max_retries: u32,
    /// TIME_WAIT duration (2 × MSL).
    pub time_wait: Duration,
    /// Keepalive idle interval; `None` disables (the paper runs with no
    /// keepalives so NAT timeouts can be observed).
    pub keepalive: Option<Duration>,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            mss: 1460,
            send_buf: 128 * 1024,
            recv_buf: 64 * 1024 - 1,
            rto_initial: Duration::from_secs(1),
            rto_min: Duration::from_millis(200),
            rto_max: Duration::from_secs(60),
            max_retries: 10,
            time_wait: Duration::from_secs(30),
            keepalive: None,
        }
    }
}

/// Marks a timestamp record in the bulk stream.
pub const STAMP_MAGIC: u64 = 0x4847_5753_5441_4D50; // "HGWSTAMP"

/// The bulk byte-stream generator used by TCP-2/TCP-3: produces `total`
/// bytes; every `stamp_every` stream bytes begin with a 16-octet record
/// `[MAGIC, send-time nanos]` (the paper embeds a timestamp every 2 KB of
/// payload).
#[derive(Debug, Clone)]
pub struct BulkSource {
    total: u64,
    generated: u64,
    stamp_every: u64,
}

impl BulkSource {
    /// A source of `total` bytes stamping every `stamp_every` bytes.
    pub fn new(total: u64, stamp_every: usize) -> BulkSource {
        assert!(stamp_every >= 16, "stamp interval must hold the 16-byte record");
        BulkSource { total, generated: 0, stamp_every: stamp_every as u64 }
    }

    /// Bytes not yet pushed into the send buffer.
    pub fn remaining(&self) -> u64 {
        self.total - self.generated
    }

    /// Generates up to `space` bytes at time `now` into `out`.
    fn generate(&mut self, now: Instant, space: usize, out: &mut ByteQueue) {
        let mut space = (space as u64).min(self.remaining());
        while space > 0 && self.remaining() > 0 {
            let pos = self.generated;
            let in_block = pos % self.stamp_every;
            if in_block == 0 {
                if space < 16 || self.remaining() < 16 {
                    break; // wait for room for a whole record
                }
                out.extend_from_slice(&STAMP_MAGIC.to_be_bytes());
                out.extend_from_slice(&now.as_nanos().to_be_bytes());
                self.generated += 16;
                space -= 16;
            } else {
                // The filler byte at stream position p is `p & 0xFF`, so any
                // run is a window into a 256-periodic pattern: copy it from
                // a static table in slices instead of generating per byte.
                static PATTERN: [u8; 512] = {
                    let mut t = [0u8; 512];
                    let mut i = 0;
                    while i < t.len() {
                        t[i] = (i & 0xFF) as u8;
                        i += 1;
                    }
                    t
                };
                let run = (self.stamp_every - in_block).min(space).min(self.remaining());
                let mut done = 0u64;
                while done < run {
                    let phase = ((pos + done) & 0xFF) as usize;
                    let n = (run - done).min(256) as usize;
                    out.extend_from_slice(&PATTERN[phase..phase + n]);
                    done += n as u64;
                }
                self.generated += run;
                space -= run;
            }
        }
    }
}

/// Receiver-side statistics collected by sink mode.
#[derive(Debug, Clone, Default)]
pub struct SinkStats {
    /// Total in-order bytes consumed.
    pub bytes: u64,
    /// `(send-time nanos, receive-time nanos)` pairs from stamp records.
    pub stamps: Vec<(u64, u64)>,
    /// Time the last byte arrived.
    pub last_arrival: Option<Instant>,
}

/// Sink: consumes the stream positionally and extracts stamp records.
#[derive(Debug, Clone, Default)]
struct SinkState {
    stats: SinkStats,
    /// Partial record bytes carried across segment boundaries.
    pending: Vec<u8>,
}

impl SinkState {
    fn consume(&mut self, now: Instant, data: &[u8], stamp_every: u64) {
        let start = self.stats.bytes;
        self.stats.bytes += data.len() as u64;
        self.stats.last_arrival = Some(now);
        // Walk the stream in runs: only the 16 record bytes at the head of
        // each `stamp_every` block matter; the payload between records is
        // skipped in one step instead of byte by byte.
        let end = start + data.len() as u64;
        let mut pos = start;
        while pos < end {
            let in_block = pos % stamp_every;
            if in_block < 16 {
                let take = (16 - in_block).min(end - pos);
                let off = (pos - start) as usize;
                self.pending.extend_from_slice(&data[off..off + take as usize]);
                pos += take;
                if in_block + take == 16 {
                    if self.pending.len() == 16 {
                        let magic = u64::from_be_bytes(self.pending[0..8].try_into().unwrap());
                        if magic == STAMP_MAGIC {
                            let sent = u64::from_be_bytes(self.pending[8..16].try_into().unwrap());
                            self.stats.stamps.push((sent, now.as_nanos()));
                        }
                    }
                    self.pending.clear();
                }
            } else {
                pos += (stamp_every - in_block).min(end - pos);
            }
        }
    }
}

/// Bytes reserved at the front of every [`TcpSegment`] buffer for the
/// option-less IPv4 (20) and TCP (20) headers. The payload is copied out of
/// the send buffer directly to its final wire offset, so a host can turn
/// the segment buffer into a complete frame by writing headers into this
/// prefix (`Ipv4Repr::write_header` + `TcpRepr::write_header_with_sum`) —
/// zero further payload copies.
pub const SEGMENT_HEADROOM: usize = 40;

/// An outgoing segment produced by [`TcpSocket::dispatch`].
///
/// The payload rides in a buffer with [`SEGMENT_HEADROOM`] zeroed prefix
/// bytes (see [`TcpSegment::payload`] / [`TcpSegment::into_parts`]), so the
/// emit path never re-copies it.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// The header.
    pub repr: TcpRepr,
    /// [`SEGMENT_HEADROOM`] zero bytes, then the payload.
    buf: Vec<u8>,
    /// RFC 1071 byte-pair sum of the payload, computed by the fused pass
    /// that copied it out of the send buffer
    /// (`ByteQueue::copy_range_into_with_sum`). Lets emission write the
    /// transport checksum without re-reading the payload.
    payload_sum: u32,
}

impl TcpSegment {
    fn new(repr: TcpRepr, buf: Vec<u8>, payload_sum: u32) -> TcpSegment {
        debug_assert!(buf.len() >= SEGMENT_HEADROOM);
        TcpSegment { repr, buf, payload_sum }
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buf[SEGMENT_HEADROOM..]
    }

    /// The pre-computed pair sum of [`TcpSegment::payload`] (see the `buf`
    /// field docs); pass to `TcpRepr::emit_with_payload_sum_onto` or
    /// `TcpRepr::write_header_with_sum`.
    pub fn payload_sum(&self) -> u32 {
        self.payload_sum
    }

    /// Decomposes into `(repr, buffer, payload_sum)`, yielding the headroom
    /// buffer for in-place frame emission or recycling.
    pub fn into_parts(self) -> (TcpRepr, Vec<u8>, u32) {
        (self.repr, self.buf, self.payload_sum)
    }
}

/// A full TCP endpoint for one connection.
#[derive(Debug)]
pub struct TcpSocket {
    /// Local address/port.
    pub local: SocketAddrV4,
    /// Remote address/port.
    pub remote: SocketAddrV4,
    config: TcpConfig,
    state: TcpState,
    error: Option<TcpError>,

    // ---- send sequence space ----
    iss: SeqNumber,
    snd_una: SeqNumber,
    snd_nxt: SeqNumber,
    /// Highest sequence number ever sent; an RTO rolls `snd_nxt` back for
    /// go-back-N but ACKs up to `snd_max` remain valid.
    snd_max: SeqNumber,
    /// Peer's advertised window.
    snd_wnd: u32,
    /// Peer MSS from its SYN.
    peer_mss: u32,
    send_buf: ByteQueue,
    /// Sequence number of the first byte in `send_buf`.
    send_buf_seq: SeqNumber,
    fin_queued: bool,
    fin_seq: Option<SeqNumber>,

    // ---- receive sequence space ----
    rcv_nxt: SeqNumber,
    recv_buf: ByteQueue,
    /// Out-of-order segments keyed by absolute starting sequence number.
    ooo: BTreeMap<u32, Vec<u8>>,
    ack_pending: bool,

    // ---- congestion control (Reno) ----
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    in_fast_recovery: bool,
    retransmit_head: bool,
    /// A SYN (or SYN-ACK) emission is due — set at open and on RTO so
    /// handshake segments are timer-driven, never re-emitted per poll.
    syn_pending: bool,

    // ---- timers ----
    rto: Duration,
    srtt: Option<Duration>,
    rttvar: Duration,
    rtt_sample: Option<(SeqNumber, Instant)>,
    rto_deadline: Option<Instant>,
    retries: u32,
    persist_deadline: Option<Instant>,
    persist_backoff: u32,
    persist_probe_due: bool,
    time_wait_deadline: Option<Instant>,
    keepalive_deadline: Option<Instant>,

    // ---- apps ----
    bulk: Option<BulkSource>,
    sink: Option<SinkState>,
    sink_stamp_every: u64,

    /// Retired segment payload buffers awaiting reuse (allocation cache
    /// for the bulk-transfer hot path; never affects TCP behavior).
    spares: Vec<Vec<u8>>,
}

impl TcpSocket {
    fn base(
        local: SocketAddrV4,
        remote: SocketAddrV4,
        iss: SeqNumber,
        config: TcpConfig,
    ) -> TcpSocket {
        TcpSocket {
            local,
            remote,
            config,
            state: TcpState::Closed,
            error: None,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            peer_mss: 536,
            send_buf: ByteQueue::new(),
            send_buf_seq: iss.add(1),
            fin_queued: false,
            fin_seq: None,
            rcv_nxt: SeqNumber(0),
            recv_buf: ByteQueue::new(),
            ooo: BTreeMap::new(),
            ack_pending: false,
            cwnd: 2 * config.mss,
            ssthresh: u32::MAX / 2,
            dup_acks: 0,
            in_fast_recovery: false,
            retransmit_head: false,
            syn_pending: true,
            rto: config.rto_initial,
            srtt: None,
            rttvar: Duration::ZERO,
            rtt_sample: None,
            rto_deadline: None,
            retries: 0,
            persist_deadline: None,
            persist_backoff: 0,
            persist_probe_due: false,
            time_wait_deadline: None,
            keepalive_deadline: None,
            bulk: None,
            sink: None,
            sink_stamp_every: 2048,
            spares: Vec::new(),
        }
    }

    /// Creates a client socket; the SYN is produced by the next
    /// [`TcpSocket::dispatch`].
    pub fn client(
        local: SocketAddrV4,
        remote: SocketAddrV4,
        iss: SeqNumber,
        config: TcpConfig,
        now: Instant,
    ) -> TcpSocket {
        let mut s = TcpSocket::base(local, remote, iss, config);
        s.state = TcpState::SynSent;
        s.arm_rto(now);
        s
    }

    /// Creates a server socket from a SYN received by a listener; the
    /// SYN-ACK is produced by the next [`TcpSocket::dispatch`].
    pub fn server(
        local: SocketAddrV4,
        remote: SocketAddrV4,
        iss: SeqNumber,
        config: TcpConfig,
        syn: &TcpRepr,
        now: Instant,
    ) -> TcpSocket {
        debug_assert!(syn.flags.contains(TcpFlags::SYN));
        let mut s = TcpSocket::base(local, remote, iss, config);
        s.state = TcpState::SynRcvd;
        s.rcv_nxt = syn.seq.add(1);
        s.snd_wnd = syn.window as u32;
        s.peer_mss = syn_mss(syn).unwrap_or(536);
        s.arm_rto(now);
        s
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The error that closed the socket, if any.
    pub fn error(&self) -> Option<TcpError> {
        self.error
    }

    /// True once fully closed (reapable).
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// The effective MSS.
    pub fn effective_mss(&self) -> u32 {
        self.config.mss.min(self.peer_mss)
    }

    /// Current congestion window (diagnostics).
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Receive-side internals for diagnostics: `(rcv_nxt, ack_pending, ooo)`.
    #[doc(hidden)]
    pub fn debug_recv_state(&self) -> (u32, bool, usize) {
        (self.rcv_nxt.0, self.ack_pending, self.ooo.len())
    }

    /// Internal sequence/timer state for diagnostics:
    /// `(snd_una, snd_nxt, snd_wnd, rto_armed, persist_armed, buf_seq)`.
    #[doc(hidden)]
    pub fn debug_state(&self) -> (u32, u32, u32, bool, bool, u32) {
        (
            self.snd_una.0,
            self.snd_nxt.0,
            self.snd_wnd,
            self.rto_deadline.is_some(),
            self.persist_deadline.is_some(),
            self.send_buf_seq.0,
        )
    }

    /// Queues application data; returns the number of bytes accepted.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if !self.state.can_send() || self.fin_queued {
            return 0;
        }
        let space = self.config.send_buf.saturating_sub(self.send_buf.len());
        let n = space.min(data.len());
        self.send_buf.extend_from_slice(&data[..n]);
        n
    }

    /// Reads up to `max` bytes of in-order received data.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        let out = self.recv_buf.take_front(max);
        if !out.is_empty() {
            self.ack_pending = true; // window update
        }
        out
    }

    /// Bytes available to read.
    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    /// Bytes sitting in the send buffer (unacked + unsent).
    pub fn send_queue_len(&self) -> usize {
        self.send_buf.len()
    }

    /// Initiates an orderly close (FIN after queued data).
    pub fn close(&mut self) {
        match self.state {
            TcpState::Established => {
                self.fin_queued = true;
                self.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                self.fin_queued = true;
                self.state = TcpState::LastAck;
            }
            TcpState::SynSent | TcpState::SynRcvd => self.state = TcpState::Closed,
            _ => {}
        }
    }

    /// Aborts the connection locally (no RST emission; the testbed's
    /// workloads close via FIN or observe timeouts).
    pub fn abort(&mut self) {
        if !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            self.error = Some(TcpError::Reset);
        }
        self.state = TcpState::Closed;
    }

    /// Attaches a bulk source (TCP-2/TCP-3 sender role).
    pub fn set_bulk_source(&mut self, total: u64, stamp_every: usize) {
        self.bulk = Some(BulkSource::new(total, stamp_every));
    }

    /// Bytes the bulk transfer has not yet pushed out and had acknowledged;
    /// zero means the transfer is fully delivered.
    pub fn bulk_unfinished(&self) -> u64 {
        self.bulk.as_ref().map(|b| b.remaining()).unwrap_or(0) + self.send_buf.len() as u64
    }

    /// Enables sink mode (TCP-2/TCP-3 receiver role).
    pub fn set_sink(&mut self, stamp_every: usize) {
        self.sink = Some(SinkState::default());
        self.sink_stamp_every = stamp_every as u64;
    }

    /// Sink statistics, if sink mode is on.
    pub fn sink_stats(&self) -> Option<&SinkStats> {
        self.sink.as_ref().map(|s| &s.stats)
    }

    // ---- timers ----

    fn arm_rto(&mut self, now: Instant) {
        let backoff = self.rto * (1u64 << self.retries.min(12));
        let rto = backoff.min(self.config.rto_max).max(self.config.rto_min);
        self.rto_deadline = Some(now + rto);
    }

    fn clear_rto(&mut self) {
        self.rto_deadline = None;
        self.retries = 0;
    }

    /// The next instant this socket needs a poll, if any.
    pub fn poll_at(&self) -> Option<Instant> {
        [self.rto_deadline, self.persist_deadline, self.time_wait_deadline, self.keepalive_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    /// Handles timer expiries at `now`. Call before [`TcpSocket::dispatch`].
    pub fn on_timer(&mut self, now: Instant) {
        if let Some(t) = self.time_wait_deadline {
            if now >= t {
                self.state = TcpState::Closed;
                self.time_wait_deadline = None;
            }
        }
        if let Some(t) = self.rto_deadline {
            if now >= t {
                self.on_rto(now);
            }
        }
        if let Some(t) = self.persist_deadline {
            if now >= t {
                self.persist_deadline = None;
                self.persist_probe_due = true;
            }
        }
        if let (Some(t), Some(interval)) = (self.keepalive_deadline, self.config.keepalive) {
            if now >= t && self.state == TcpState::Established {
                self.ack_pending = true; // a pure ACK doubles as a keepalive
                self.keepalive_deadline = Some(now + interval);
            }
        }
    }

    fn on_rto(&mut self, now: Instant) {
        self.rto_deadline = None;
        let has_unacked = self.snd_una.lt(self.snd_nxt);
        let handshaking = matches!(self.state, TcpState::SynSent | TcpState::SynRcvd);
        if !has_unacked && !handshaking {
            return;
        }
        self.retries += 1;
        if self.retries > self.config.max_retries {
            self.state = TcpState::Closed;
            self.error = Some(TcpError::TimedOut);
            return;
        }
        // Karn: invalidate the RTT sample; collapse to go-back-N.
        self.rtt_sample = None;
        if matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) {
            self.syn_pending = true;
        }
        self.ssthresh = (self.flight_size() / 2).max(2 * self.effective_mss());
        self.cwnd = self.effective_mss();
        self.dup_acks = 0;
        self.in_fast_recovery = false;
        self.snd_nxt = self.snd_una;
        if self.fin_seq.is_some() && !self.fin_acked() {
            self.fin_seq = None; // FIN needs retransmitting too
        }
        self.arm_rto(now);
    }

    fn flight_size(&self) -> u32 {
        self.snd_nxt.dist(self.snd_una).max(0) as u32
    }

    // ---- segment arrival ----

    /// Processes an incoming segment addressed to this connection.
    pub fn process(&mut self, now: Instant, repr: &TcpRepr, payload: &[u8]) {
        if self.state == TcpState::Closed {
            return;
        }
        // RST validity: only an in-window RST (or, in SYN_SENT, one that
        // acks our SYN) resets the connection. Garbage resets — e.g. the
        // invalid RSTs device ls2 fabricates from ICMP errors — are ignored.
        if repr.flags.contains(TcpFlags::RST) {
            let acceptable = match self.state {
                TcpState::SynSent => {
                    repr.flags.contains(TcpFlags::ACK) && repr.ack == self.iss.add(1)
                }
                _ => self.seq_in_window(repr.seq),
            };
            if acceptable {
                self.state = TcpState::Closed;
                self.error = Some(TcpError::Reset);
            }
            return;
        }

        match self.state {
            TcpState::SynSent => {
                if repr.flags.contains(TcpFlags::SYN | TcpFlags::ACK) && repr.ack == self.iss.add(1)
                {
                    self.rcv_nxt = repr.seq.add(1);
                    self.snd_una = repr.ack;
                    self.snd_nxt = repr.ack;
                    self.send_buf_seq = repr.ack;
                    self.track_snd_max();
                    self.snd_wnd = repr.window as u32;
                    self.peer_mss = syn_mss(repr).unwrap_or(536);
                    self.cwnd = 2 * self.effective_mss();
                    self.state = TcpState::Established;
                    self.clear_rto();
                    self.ack_pending = true;
                    self.reset_keepalive(now);
                }
                return;
            }
            TcpState::SynRcvd => {
                if repr.flags.contains(TcpFlags::SYN) {
                    self.syn_pending = true; // duplicate SYN: re-answer once
                    return;
                }
                if repr.flags.contains(TcpFlags::ACK) && repr.ack == self.iss.add(1) {
                    self.snd_una = repr.ack;
                    if self.snd_nxt.lt(repr.ack) {
                        self.snd_nxt = repr.ack;
                    }
                    self.send_buf_seq = repr.ack;
                    self.snd_wnd = repr.window as u32;
                    self.state = TcpState::Established;
                    self.clear_rto();
                    self.reset_keepalive(now);
                    // Fall through: the segment may carry data or FIN.
                } else {
                    return;
                }
            }
            _ => {}
        }

        if repr.flags.contains(TcpFlags::ACK) {
            self.process_ack(now, repr);
        }
        if !payload.is_empty() {
            self.process_data(now, repr.seq, payload);
        }
        if repr.flags.contains(TcpFlags::FIN) {
            self.process_fin(now, repr.seq.add(payload.len() as u32));
        }
        self.reset_keepalive(now);
    }

    fn process_fin(&mut self, now: Instant, fin_seq: SeqNumber) {
        if fin_seq == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.add(1);
            self.ack_pending = true;
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    if self.fin_acked() {
                        self.enter_time_wait(now);
                    } else {
                        self.state = TcpState::Closing;
                    }
                }
                TcpState::FinWait2 => self.enter_time_wait(now),
                _ => {}
            }
        } else if fin_seq.lt(self.rcv_nxt) {
            self.ack_pending = true; // retransmitted FIN: re-ack
        }
        // A FIN beyond rcv_nxt waits for the missing data to arrive; the
        // peer will retransmit it.
    }

    fn fin_acked(&self) -> bool {
        match self.fin_seq {
            Some(f) => f.add(1).le(self.snd_una),
            None => false,
        }
    }

    fn enter_time_wait(&mut self, now: Instant) {
        self.state = TcpState::TimeWait;
        self.time_wait_deadline = Some(now + self.config.time_wait);
        self.clear_rto();
    }

    fn seq_in_window(&self, seq: SeqNumber) -> bool {
        let wnd = self.recv_window().max(1);
        let d = seq.dist(self.rcv_nxt);
        d >= 0 && (d as u32) < wnd
    }

    fn process_ack(&mut self, now: Instant, repr: &TcpRepr) {
        let ack = repr.ack;
        if ack.le(self.snd_una) {
            if ack == self.snd_una
                && self.snd_una.lt(self.snd_nxt)
                && repr.window as u32 == self.snd_wnd
            {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    // Fast retransmit + fast recovery.
                    self.ssthresh = (self.flight_size() / 2).max(2 * self.effective_mss());
                    self.cwnd = self.ssthresh + 3 * self.effective_mss();
                    self.in_fast_recovery = true;
                    self.retransmit_head = true;
                    self.rtt_sample = None;
                } else if self.dup_acks > 3 && self.in_fast_recovery {
                    self.cwnd += self.effective_mss();
                }
            }
            self.snd_wnd = repr.window as u32;
            self.wake_persist(now);
            return;
        }
        if self.snd_max.lt(ack) {
            return; // acks data we never sent
        }
        // New data acked (possibly beyond a rolled-back snd_nxt).
        let newly = ack.dist(self.snd_una) as u32;
        self.snd_una = ack;
        if self.snd_nxt.lt(ack) {
            self.snd_nxt = ack;
        }
        self.dup_acks = 0;
        if self.in_fast_recovery {
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
        } else if self.cwnd < self.ssthresh {
            self.cwnd += newly.min(self.effective_mss()); // slow start
        } else {
            let mss = self.effective_mss();
            self.cwnd += (mss * mss / self.cwnd).max(1); // congestion avoidance
        }
        // Drop acked bytes (not the FIN's sequence slot) from the buffer.
        let acked_bytes = ack.dist(self.send_buf_seq);
        if acked_bytes > 0 {
            let n = (acked_bytes as usize).min(self.send_buf.len());
            self.send_buf.consume(n);
            self.send_buf_seq = self.send_buf_seq.add(n as u32);
        }
        self.take_rtt_sample_on_ack(now, ack);
        self.snd_wnd = repr.window as u32;
        self.wake_persist(now);
        if self.snd_una == self.snd_nxt {
            self.clear_rto();
        } else {
            self.retries = 0;
            self.arm_rto(now);
        }
        if self.fin_acked() {
            match self.state {
                TcpState::FinWait1 => self.state = TcpState::FinWait2,
                TcpState::Closing => self.enter_time_wait(now),
                TcpState::LastAck => self.state = TcpState::Closed,
                _ => {}
            }
        }
    }

    fn wake_persist(&mut self, now: Instant) {
        if self.snd_wnd == 0 && !self.send_buf.is_empty() {
            if self.persist_deadline.is_none() && !self.persist_probe_due {
                let backoff = Duration::from_millis(500) * (1u64 << self.persist_backoff.min(6));
                self.persist_deadline = Some(now + backoff);
                self.persist_backoff += 1;
            }
        } else {
            self.persist_deadline = None;
            self.persist_backoff = 0;
            self.persist_probe_due = false;
        }
    }

    fn take_rtt_sample_on_ack(&mut self, now: Instant, ack: SeqNumber) {
        if let Some((seq, sent_at)) = self.rtt_sample {
            if seq.le(ack) {
                let m = now.duration_since(sent_at);
                match self.srtt {
                    None => {
                        self.srtt = Some(m);
                        self.rttvar = m / 2;
                    }
                    Some(srtt) => {
                        let delta = if srtt > m { srtt - m } else { m - srtt };
                        self.rttvar = self.rttvar * 3 / 4 + delta / 4;
                        self.srtt = Some(srtt * 7 / 8 + m / 8);
                    }
                }
                let var_term = (self.rttvar * 4).max(Duration::from_millis(10));
                self.rto = (self.srtt.unwrap() + var_term)
                    .max(self.config.rto_min)
                    .min(self.config.rto_max);
                self.rtt_sample = None;
            }
        }
    }

    fn process_data(&mut self, now: Instant, seq: SeqNumber, payload: &[u8]) {
        if !self.state.can_recv() && self.state != TcpState::SynRcvd {
            return;
        }
        self.ack_pending = true;
        let offset = seq.dist(self.rcv_nxt);
        if offset > 0 {
            // Out of order: stash if within the window, bounded.
            if (offset as u32) < self.recv_window_limit().max(1) && self.ooo.len() < 64 {
                self.ooo.insert(seq.0, payload.to_vec());
            }
            return;
        }
        let skip = (-offset) as usize;
        if skip < payload.len() {
            self.accept_in_order(now, &payload[skip..]);
        }
        // Drain stashed segments that became contiguous.
        loop {
            let next = self.ooo.iter().find_map(|(&k, v)| {
                let off = SeqNumber(k).dist(self.rcv_nxt);
                (off <= 0).then_some((k, (-off) as usize, v.len()))
            });
            let Some((key, skip, len)) = next else { break };
            let data = self.ooo.remove(&key).unwrap();
            if skip < len {
                self.accept_in_order(now, &data[skip..]);
            }
        }
    }

    fn accept_in_order(&mut self, now: Instant, data: &[u8]) {
        let take = data.len().min(self.recv_window_limit() as usize);
        let data = &data[..take];
        self.rcv_nxt = self.rcv_nxt.add(data.len() as u32);
        if let Some(sink) = &mut self.sink {
            sink.consume(now, data, self.sink_stamp_every);
        } else {
            self.recv_buf.extend_from_slice(data);
        }
    }

    fn recv_window_limit(&self) -> u32 {
        if self.sink.is_some() {
            return self.config.recv_buf as u32; // sink drains instantly
        }
        self.config.recv_buf.saturating_sub(self.recv_buf.len()) as u32
    }

    /// The window to advertise, capped at 65535 (no window scaling).
    fn recv_window(&self) -> u32 {
        self.recv_window_limit().min(65_535)
    }

    fn reset_keepalive(&mut self, now: Instant) {
        if let Some(interval) = self.config.keepalive {
            self.keepalive_deadline = Some(now + interval);
        }
    }

    // ---- segment emission ----

    /// Produces every segment the socket wants to transmit right now.
    pub fn dispatch(&mut self, now: Instant, out: &mut Vec<TcpSegment>) {
        match self.state {
            TcpState::Closed => return,
            TcpState::TimeWait => {
                if self.ack_pending {
                    let seg = self.make_segment(TcpFlags::ACK, self.snd_nxt);
                    out.push(seg);
                    self.ack_pending = false;
                }
                return;
            }
            TcpState::SynSent => {
                if self.syn_pending {
                    let mut repr = self.header(TcpFlags::SYN, self.iss);
                    repr.ack = SeqNumber(0);
                    repr.options = vec![TcpOption::MaxSegmentSize(self.config.mss as u16)];
                    self.snd_nxt = self.iss.add(1);
                    self.track_snd_max();
                    let buf = self.headroom_buf();
                    out.push(TcpSegment::new(repr, buf, 0));
                    self.syn_pending = false;
                }
                return;
            }
            TcpState::SynRcvd => {
                if self.syn_pending {
                    let mut repr = self.header(TcpFlags::SYN | TcpFlags::ACK, self.iss);
                    repr.options = vec![TcpOption::MaxSegmentSize(self.config.mss as u16)];
                    self.snd_nxt = self.iss.add(1);
                    self.track_snd_max();
                    let buf = self.headroom_buf();
                    out.push(TcpSegment::new(repr, buf, 0));
                    self.syn_pending = false;
                }
                return;
            }
            _ => {}
        }

        // Refill the send buffer from the bulk source.
        if let Some(bulk) = &mut self.bulk {
            if self.state.can_send() && !self.fin_queued {
                let space = self.config.send_buf.saturating_sub(self.send_buf.len());
                bulk.generate(now, space, &mut self.send_buf);
            }
        }

        let mss = self.effective_mss() as usize;
        let mut sent_any = false;

        if self.retransmit_head {
            let data = self.buffered_range(self.snd_una, mss);
            if !data.0.is_empty() {
                let seg = self.make_data_segment(TcpFlags::ACK | TcpFlags::PSH, self.snd_una, data);
                out.push(seg);
            } else if self.fin_seq == Some(self.snd_una) {
                let seg = self.make_segment(TcpFlags::FIN | TcpFlags::ACK, self.snd_una);
                out.push(seg);
            }
            self.retransmit_head = false;
            sent_any = true;
        }

        // New data within min(cwnd, peer window); a due persist probe may
        // send one byte into a zero window.
        let probe_extra = if self.persist_probe_due { 1 } else { 0 };
        let wnd = self.cwnd.min(self.snd_wnd.max(probe_extra));
        loop {
            let flight = self.flight_size();
            if flight >= wnd {
                break;
            }
            let budget = ((wnd - flight) as usize).min(mss);
            let data = self.buffered_range(self.snd_nxt, budget);
            if data.0.is_empty() {
                break;
            }
            let plen = data.0.len() - SEGMENT_HEADROOM;
            // Nagle-ish: defer a sub-MSS segment while more data waits and
            // earlier segments are in flight.
            let unsent = self.unsent_from(self.snd_nxt);
            if plen < mss && plen < unsent && flight > 0 && !self.persist_probe_due {
                break;
            }
            let len = plen as u32;
            let flags = if plen < mss { TcpFlags::ACK | TcpFlags::PSH } else { TcpFlags::ACK };
            let seg = self.make_data_segment(flags, self.snd_nxt, data);
            out.push(seg);
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt.add(len), now));
            }
            self.snd_nxt = self.snd_nxt.add(len);
            self.track_snd_max();
            self.persist_probe_due = false;
            sent_any = true;
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        }

        // FIN once every buffered byte has been transmitted.
        if self.fin_queued && self.unsent_from(self.snd_nxt) == 0 && self.fin_seq.is_none() {
            let seg = self.make_segment(TcpFlags::FIN | TcpFlags::ACK, self.snd_nxt);
            out.push(seg);
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.add(1);
            self.track_snd_max();
            sent_any = true;
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        }

        if self.ack_pending && !sent_any {
            let seg = self.make_segment(TcpFlags::ACK, self.snd_nxt);
            out.push(seg);
        }
        self.ack_pending = false;
    }

    fn track_snd_max(&mut self) {
        if self.snd_max.lt(self.snd_nxt) {
            self.snd_max = self.snd_nxt;
        }
    }

    /// A cleared spare buffer pre-filled with [`SEGMENT_HEADROOM`] zero
    /// bytes, ready to receive payload at its final wire offset.
    fn headroom_buf(&mut self) -> Vec<u8> {
        let mut out = self.spares.pop().unwrap_or_default();
        out.clear();
        out.resize(SEGMENT_HEADROOM, 0);
        out
    }

    /// Bytes of the send buffer starting at absolute sequence `seq`, laid
    /// out after [`SEGMENT_HEADROOM`] in a spare buffer, plus their pair
    /// sum from the same fused copy pass. An empty range returns an empty
    /// (headroom-less) buffer.
    fn buffered_range(&mut self, seq: SeqNumber, max: usize) -> (Vec<u8>, u32) {
        let start = seq.dist(self.send_buf_seq);
        if start < 0 || start as usize >= self.send_buf.len() || max == 0 {
            return (Vec::new(), 0);
        }
        let mut out = self.headroom_buf();
        let sum = self.send_buf.copy_range_into_with_sum(start as usize, max, &mut out);
        (out, sum)
    }

    /// Hands a retired segment payload buffer back for reuse by a later
    /// [`TcpSocket::dispatch`]. Purely an allocation cache — dropping the
    /// buffer instead is always correct, so callers that don't track
    /// payload ownership simply skip this.
    pub fn recycle_payload(&mut self, mut buf: Vec<u8>) {
        if self.spares.len() < 8 && buf.capacity() > 0 {
            buf.clear();
            self.spares.push(buf);
        }
    }

    /// True while the spare-buffer cache has room — callers that own a
    /// buffer source (e.g. a frame pool) can check before pulling a buffer
    /// to [`TcpSocket::recycle_payload`], so no buffer is taken just to be
    /// dropped.
    pub fn wants_spare(&self) -> bool {
        self.spares.len() < 8
    }

    fn unsent_from(&self, seq: SeqNumber) -> usize {
        let start = seq.dist(self.send_buf_seq).max(0) as usize;
        self.send_buf.len().saturating_sub(start)
    }

    fn header(&self, flags: TcpFlags, seq: SeqNumber) -> TcpRepr {
        TcpRepr {
            src_port: self.local.port(),
            dst_port: self.remote.port(),
            seq,
            ack: self.rcv_nxt,
            flags,
            window: self.recv_window() as u16,
            options: Vec::new(),
        }
    }

    fn make_segment(&mut self, flags: TcpFlags, seq: SeqNumber) -> TcpSegment {
        let buf = self.headroom_buf();
        TcpSegment::new(self.header(flags, seq), buf, 0)
    }

    fn make_data_segment(
        &mut self,
        flags: TcpFlags,
        seq: SeqNumber,
        (buf, payload_sum): (Vec<u8>, u32),
    ) -> TcpSegment {
        TcpSegment::new(self.header(flags, seq), buf, payload_sum)
    }
}

/// Extracts the MSS option from a SYN.
fn syn_mss(repr: &TcpRepr) -> Option<u32> {
    repr.options.iter().find_map(|o| match o {
        TcpOption::MaxSegmentSize(m) => Some(*m as u32),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8, port: u16) -> SocketAddrV4 {
        SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, last), port)
    }

    /// Wires two sockets back to back, exchanging segments instantly with
    /// optional loss, until neither has anything to say. Returns segment
    /// count.
    fn pump(a: &mut TcpSocket, b: &mut TcpSocket, now: Instant, drop_nth: Option<usize>) -> usize {
        let mut total = 0;
        let mut n = 0;
        loop {
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            a.dispatch(now, &mut out_a);
            b.dispatch(now, &mut out_b);
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            total += out_a.len() + out_b.len();
            for seg in out_a {
                n += 1;
                if Some(n) == drop_nth {
                    continue;
                }
                b.process(now, &seg.repr, seg.payload());
            }
            for seg in out_b {
                n += 1;
                if Some(n) == drop_nth {
                    continue;
                }
                a.process(now, &seg.repr, seg.payload());
            }
            if total > 100_000 {
                panic!("pump did not converge");
            }
        }
        total
    }

    fn established_pair() -> (TcpSocket, TcpSocket, Instant) {
        let now = Instant::from_millis(1);
        let mut c = TcpSocket::client(
            addr(2, 4000),
            addr(1, 80),
            SeqNumber(1000),
            TcpConfig::default(),
            now,
        );
        // Drive the SYN out, hand it to a fresh server socket.
        let mut out = Vec::new();
        c.dispatch(now, &mut out);
        assert_eq!(out.len(), 1);
        let syn = &out[0];
        assert!(syn.repr.flags.contains(TcpFlags::SYN));
        let mut s = TcpSocket::server(
            addr(1, 80),
            addr(2, 4000),
            SeqNumber(9000),
            TcpConfig::default(),
            &syn.repr,
            now,
        );
        pump(&mut c, &mut s, now, None);
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
        (c, s, now)
    }

    #[test]
    fn three_way_handshake() {
        let (_c, _s, _) = established_pair();
    }

    #[test]
    fn data_transfer_both_directions() {
        let (mut c, mut s, now) = established_pair();
        assert_eq!(c.send(b"request"), 7);
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.recv(100), b"request");
        assert_eq!(s.send(b"response!"), 9);
        pump(&mut c, &mut s, now, None);
        assert_eq!(c.recv(100), b"response!");
    }

    #[test]
    fn large_transfer_is_segmented_by_mss() {
        let (mut c, mut s, now) = established_pair();
        let data = vec![0xABu8; 10_000];
        assert_eq!(c.send(&data), 10_000);
        pump(&mut c, &mut s, now, None);
        let got = s.recv(20_000);
        assert_eq!(got.len(), 10_000);
        assert!(got.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn orderly_close_reaches_time_wait_and_last_ack() {
        let (mut c, mut s, now) = established_pair();
        c.send(b"bye");
        c.close();
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.recv(10), b"bye");
        assert_eq!(s.state(), TcpState::CloseWait);
        assert_eq!(c.state(), TcpState::FinWait2);
        s.close();
        pump(&mut c, &mut s, now, None);
        assert_eq!(c.state(), TcpState::TimeWait);
        assert_eq!(s.state(), TcpState::Closed);
        // TIME_WAIT expires.
        let later = now + TcpConfig::default().time_wait + Duration::from_secs(1);
        c.on_timer(later);
        assert!(c.is_closed());
        assert_eq!(c.error(), None);
    }

    #[test]
    fn lost_data_segment_is_retransmitted_on_rto() {
        let (mut c, mut s, now) = established_pair();
        c.send(b"important");
        // Drop the first data segment.
        pump(&mut c, &mut s, now, Some(1));
        assert_eq!(s.recv_available(), 0);
        // Fire the RTO.
        let rto_at = c.poll_at().expect("rto armed");
        c.on_timer(rto_at);
        pump(&mut c, &mut s, rto_at, None);
        assert_eq!(s.recv(100), b"important");
    }

    #[test]
    fn rto_backoff_eventually_times_out() {
        let now = Instant::from_millis(1);
        let cfg = TcpConfig { max_retries: 3, ..TcpConfig::default() };
        let mut c = TcpSocket::client(addr(2, 4000), addr(1, 80), SeqNumber(0), cfg, now);
        let mut out = Vec::new();
        c.dispatch(now, &mut out); // SYN into the void
        for _ in 0..10 {
            if let Some(t) = c.poll_at() {
                c.on_timer(t);
                c.dispatch(t, &mut out);
            }
        }
        assert!(c.is_closed());
        assert_eq!(c.error(), Some(TcpError::TimedOut));
    }

    #[test]
    fn out_of_window_rst_is_ignored_in_window_rst_kills() {
        let (mut c, _s, now) = established_pair();
        // Fabricate an out-of-window RST (like ls2's invalid translations).
        let mut rst = TcpRepr::new(80, 4000, TcpFlags::RST);
        rst.seq = SeqNumber(0xDEAD_0000); // far outside the window
        c.process(now, &rst, &[]);
        assert_eq!(c.state(), TcpState::Established, "bogus RST must be ignored");

        // An in-window RST is honored. rcv_nxt is the server ISS + 1.
        let mut valid = TcpRepr::new(80, 4000, TcpFlags::RST);
        valid.seq = SeqNumber(9001);
        c.process(now, &valid, &[]);
        assert!(c.is_closed());
        assert_eq!(c.error(), Some(TcpError::Reset));
    }

    #[test]
    fn reordered_segments_reassemble() {
        let (mut c, mut s, now) = established_pair();
        c.send(&vec![1u8; 3000]); // three MSS-1460 segments? (1460+1460+80)
        let mut segs = Vec::new();
        c.dispatch(now, &mut segs);
        assert!(segs.len() >= 2);
        // Deliver in reverse order.
        for seg in segs.iter().rev() {
            s.process(now, &seg.repr, seg.payload());
        }
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.recv(5000).len(), 3000);
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let (mut c, mut s, now) = established_pair();
        let initial = c.cwnd();
        c.send(&vec![0u8; 50_000]);
        pump(&mut c, &mut s, now, None);
        assert!(c.cwnd() > initial, "cwnd should grow: {} -> {}", initial, c.cwnd());
        assert_eq!(s.recv(60_000).len(), 50_000);
    }

    #[test]
    fn bulk_source_and_sink_move_all_bytes_with_stamps() {
        let (mut c, mut s, now) = established_pair();
        c.set_bulk_source(64 * 1024, 2048);
        s.set_sink(2048);
        // Iteratively pump with advancing time so stamps differ.
        let mut t = now;
        for _ in 0..200 {
            if c.bulk_unfinished() == 0 {
                break;
            }
            c.on_timer(t);
            s.on_timer(t);
            pump(&mut c, &mut s, t, None);
            t += Duration::from_millis(1);
        }
        assert_eq!(c.bulk_unfinished(), 0);
        let stats = s.sink_stats().unwrap();
        assert_eq!(stats.bytes, 64 * 1024);
        assert_eq!(stats.stamps.len(), (64 * 1024) / 2048);
        for (sent, rcvd) in &stats.stamps {
            assert!(rcvd >= sent);
        }
    }

    #[test]
    fn keepalive_emits_periodic_acks() {
        let now = Instant::from_millis(1);
        let cfg = TcpConfig { keepalive: Some(Duration::from_secs(10)), ..TcpConfig::default() };
        let mut c = TcpSocket::client(addr(2, 4000), addr(1, 80), SeqNumber(1000), cfg, now);
        let mut out = Vec::new();
        c.dispatch(now, &mut out);
        let syn = out.pop().unwrap();
        let mut s = TcpSocket::server(
            addr(1, 80),
            addr(2, 4000),
            SeqNumber(2000),
            TcpConfig::default(),
            &syn.repr,
            now,
        );
        pump(&mut c, &mut s, now, None);
        assert_eq!(c.state(), TcpState::Established);
        let ka_at = c.poll_at().expect("keepalive armed");
        assert_eq!(ka_at, now + Duration::from_secs(10));
        c.on_timer(ka_at);
        let mut out = Vec::new();
        c.dispatch(ka_at, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].repr.flags.contains(TcpFlags::ACK));
        assert!(out[0].payload().is_empty());
    }

    #[test]
    fn zero_window_then_probe_recovers() {
        let now = Instant::from_millis(1);
        let small = TcpConfig { recv_buf: 2048, ..TcpConfig::default() };
        let mut c = TcpSocket::client(
            addr(2, 4000),
            addr(1, 80),
            SeqNumber(1000),
            TcpConfig::default(),
            now,
        );
        let mut out = Vec::new();
        c.dispatch(now, &mut out);
        let syn = out.pop().unwrap();
        let mut s =
            TcpSocket::server(addr(1, 80), addr(2, 4000), SeqNumber(2000), small, &syn.repr, now);
        pump(&mut c, &mut s, now, None);
        // Fill the tiny receive buffer without the app reading.
        c.send(&vec![7u8; 8000]);
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.recv_available(), 2048);
        // Application finally reads; window reopens via ACK.
        let got = s.recv(10_000);
        assert_eq!(got.len(), 2048);
        let mut t = now;
        for _ in 0..100 {
            if c.send_queue_len() == 0 && s.recv_available() == 0 && c.unsent_from(c.snd_nxt) == 0 {
                break;
            }
            t += Duration::from_millis(600);
            c.on_timer(t);
            s.on_timer(t);
            pump(&mut c, &mut s, t, None);
            s.recv(10_000);
        }
        assert_eq!(c.send_queue_len(), 0, "all data should eventually flow");
    }

    #[test]
    fn fast_retransmit_on_triple_dupack() {
        let (mut c, mut s, now) = established_pair();
        // Warm up so the congestion window holds five segments.
        c.send(&vec![9u8; 50_000]);
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.recv(60_000).len(), 50_000);
        assert!(c.cwnd() >= 1460 * 5);
        // Send five segments; drop the first on delivery, deliver the rest
        // to generate dup ACKs.
        c.send(&vec![3u8; 1460 * 5]);
        let mut segs = Vec::new();
        c.dispatch(now, &mut segs);
        assert!(segs.len() >= 4, "expected several segments, got {}", segs.len());
        let mut acks = Vec::new();
        for (i, seg) in segs.iter().enumerate() {
            if i == 0 {
                continue; // lost
            }
            s.process(now, &seg.repr, seg.payload());
            let mut out = Vec::new();
            s.dispatch(now, &mut out);
            acks.extend(out);
        }
        // Feed the dup ACKs back.
        for ack in &acks {
            c.process(now, &ack.repr, ack.payload());
        }
        let mut out = Vec::new();
        c.dispatch(now, &mut out);
        // The head segment must have been retransmitted without an RTO.
        let head_seq = segs[0].repr.seq;
        assert!(
            out.iter().any(|seg| seg.repr.seq == head_seq && !seg.payload().is_empty()),
            "head segment should be fast-retransmitted"
        );
        for seg in &out {
            s.process(now, &seg.repr, seg.payload());
        }
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.recv(10_000).len(), 1460 * 5);
    }

    #[test]
    fn mss_negotiated_from_syn() {
        let now = Instant::ZERO;
        let cfg = TcpConfig { mss: 500, ..TcpConfig::default() };
        let mut c = TcpSocket::client(addr(2, 1), addr(1, 2), SeqNumber(0), cfg, now);
        let mut out = Vec::new();
        c.dispatch(now, &mut out);
        let syn = out.pop().unwrap();
        let mut s = TcpSocket::server(
            addr(1, 2),
            addr(2, 1),
            SeqNumber(0),
            TcpConfig::default(),
            &syn.repr,
            now,
        );
        pump(&mut c, &mut s, now, None);
        assert_eq!(s.effective_mss(), 500);
        assert_eq!(c.effective_mss(), 500);
        // Server-side segments respect the peer MSS.
        s.send(&vec![1u8; 1200]);
        let mut segs = Vec::new();
        s.dispatch(now, &mut segs);
        assert!(segs.iter().all(|sg| sg.payload().len() <= 500));
    }

    #[test]
    fn duplicate_data_is_not_double_delivered() {
        let (mut c, mut s, now) = established_pair();
        c.send(b"once");
        let mut segs = Vec::new();
        c.dispatch(now, &mut segs);
        let seg = &segs[0];
        s.process(now, &seg.repr, seg.payload());
        s.process(now, &seg.repr, seg.payload()); // duplicate
        assert_eq!(s.recv(100), b"once");
        assert_eq!(s.recv_available(), 0);
    }
}
