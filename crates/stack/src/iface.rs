//! Interfaces and routing for simulated hosts.
//!
//! Links in the testbed are point-to-point (each VLAN of Figure 1 connects
//! exactly one gateway port to one host port), so a route resolves to an
//! egress port; there is no ARP layer.

use std::net::Ipv4Addr;

use hgw_core::PortId;

/// Converts a prefix length to a netmask.
pub fn prefix_to_mask(prefix: u8) -> u32 {
    debug_assert!(prefix <= 32);
    if prefix == 0 {
        0
    } else {
        u32::MAX << (32 - prefix)
    }
}

/// True if `addr` is inside `net/prefix`.
pub fn in_subnet(addr: Ipv4Addr, net: Ipv4Addr, prefix: u8) -> bool {
    let mask = prefix_to_mask(prefix);
    (u32::from(addr) & mask) == (u32::from(net) & mask)
}

/// Static configuration of one interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceConfig {
    /// The interface's own address.
    pub addr: Ipv4Addr,
    /// Subnet prefix length.
    pub prefix: u8,
}

impl IfaceConfig {
    /// Creates a configuration.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> IfaceConfig {
        IfaceConfig { addr, prefix }
    }

    /// The unconfigured state (0.0.0.0/0) used before DHCP completes.
    pub fn unconfigured() -> IfaceConfig {
        IfaceConfig { addr: Ipv4Addr::UNSPECIFIED, prefix: 0 }
    }

    /// True once an address is assigned.
    pub fn is_configured(&self) -> bool {
        self.addr != Ipv4Addr::UNSPECIFIED
    }
}

/// A configured interface bound to a simulator port.
#[derive(Debug, Clone)]
pub struct Iface {
    /// The port this interface transmits on.
    pub port: PortId,
    /// Address configuration.
    pub config: IfaceConfig,
}

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination network.
    pub dest: Ipv4Addr,
    /// Destination prefix length.
    pub prefix: u8,
    /// Egress port.
    pub port: PortId,
}

/// A routing table with longest-prefix match.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: Vec<Route>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Adds a route. Later identical-prefix routes shadow earlier ones.
    pub fn add(&mut self, dest: Ipv4Addr, prefix: u8, port: PortId) {
        self.routes.push(Route { dest, prefix, port });
    }

    /// Adds a default route (0.0.0.0/0).
    pub fn add_default(&mut self, port: PortId) {
        self.add(Ipv4Addr::UNSPECIFIED, 0, port);
    }

    /// Removes every route pointing at `port`.
    pub fn flush_port(&mut self, port: PortId) {
        self.routes.retain(|r| r.port != port);
    }

    /// Looks up the egress port for `dst` (longest prefix wins; among equal
    /// prefixes the most recently added wins).
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        // `max_by_key` keeps the last maximum, so among equal prefixes the
        // most recently added route wins.
        self.routes
            .iter()
            .filter(|r| in_subnet(dst, r.dest, r.prefix))
            .max_by_key(|r| r.prefix)
            .map(|r| r.port)
    }

    /// All routes (diagnostics).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_math() {
        assert_eq!(prefix_to_mask(0), 0);
        assert_eq!(prefix_to_mask(24), 0xFFFF_FF00);
        assert_eq!(prefix_to_mask(32), u32::MAX);
    }

    #[test]
    fn subnet_membership() {
        let net = Ipv4Addr::new(192, 168, 1, 0);
        assert!(in_subnet(Ipv4Addr::new(192, 168, 1, 200), net, 24));
        assert!(!in_subnet(Ipv4Addr::new(192, 168, 2, 1), net, 24));
        assert!(in_subnet(Ipv4Addr::new(8, 8, 8, 8), Ipv4Addr::UNSPECIFIED, 0));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut table = RoutingTable::new();
        table.add_default(PortId(0));
        table.add(Ipv4Addr::new(10, 0, 0, 0), 8, PortId(1));
        table.add(Ipv4Addr::new(10, 0, 5, 0), 24, PortId(2));
        assert_eq!(table.lookup(Ipv4Addr::new(10, 0, 5, 9)), Some(PortId(2)));
        assert_eq!(table.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(PortId(1)));
        assert_eq!(table.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(PortId(0)));
    }

    #[test]
    fn later_route_shadows_equal_prefix() {
        let mut table = RoutingTable::new();
        table.add(Ipv4Addr::new(10, 0, 0, 0), 8, PortId(1));
        table.add(Ipv4Addr::new(10, 0, 0, 0), 8, PortId(2));
        assert_eq!(table.lookup(Ipv4Addr::new(10, 1, 1, 1)), Some(PortId(2)));
    }

    #[test]
    fn flush_port_removes_routes() {
        let mut table = RoutingTable::new();
        table.add_default(PortId(0));
        table.add(Ipv4Addr::new(10, 0, 0, 0), 8, PortId(1));
        table.flush_port(PortId(0));
        assert_eq!(table.lookup(Ipv4Addr::new(8, 8, 8, 8)), None);
        assert_eq!(table.lookup(Ipv4Addr::new(10, 1, 1, 1)), Some(PortId(1)));
    }

    #[test]
    fn empty_table_has_no_route() {
        assert_eq!(RoutingTable::new().lookup(Ipv4Addr::new(1, 2, 3, 4)), None);
    }

    #[test]
    fn unconfigured_iface() {
        assert!(!IfaceConfig::unconfigured().is_configured());
        assert!(IfaceConfig::new(Ipv4Addr::new(10, 0, 1, 2), 24).is_configured());
    }
}
