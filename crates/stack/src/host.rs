//! The [`Host`] node: a complete endpoint stack on the simulated network.
//!
//! A `Host` plays both testbed roles of the paper (Figure 1): the *test
//! client* behind each gateway and the *test server* on the WAN side. It
//! integrates IPv4 input/output with routing, UDP sockets, full TCP, ICMP
//! (echo + error recording + port-unreachable generation), the SCTP and
//! DCCP probe endpoints, a DNS server (UDP and TCP), and DHCP client and
//! server roles. Experiment drivers interact with it through
//! [`Simulator::with_node`](hgw_core::Simulator::with_node).

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddrV4};

use hgw_core::{impl_node_downcast, Instant, Node, NodeCtx, PortId, TimerToken};
use hgw_wire::dccp::DccpRepr;
use hgw_wire::dhcp::{DhcpMessage, CLIENT_PORT, SERVER_PORT};
use hgw_wire::dns::DnsMessage;
use hgw_wire::icmp::{IcmpRepr, UnreachCode};
use hgw_wire::ip::{Ipv4Repr, Protocol};
use hgw_wire::sctp::{Chunk, SctpRepr};
use hgw_wire::tcp::TcpRepr;
use hgw_wire::{Ipv4Packet, SeqNumber, TcpFlags, TcpPacket, UdpPacket, UdpRepr};

use crate::dccp::{DccpEndpoint, DccpServerConn};
use crate::dhcp::{DhcpClient, DhcpServer, DhcpServerConfig};
use crate::dns::DnsZone;
use crate::icmp::{parse_embedded, IcmpEvent};
use crate::iface::{Iface, IfaceConfig, RoutingTable};
use crate::sctp::{SctpAssociation, SctpEndpoint};
use crate::tcp::{TcpConfig, TcpSegment, TcpSocket};

/// Handle to a UDP socket on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHandle(pub usize);

/// Handle to a TCP socket on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHandle(pub usize);

/// Handle to an SCTP endpoint on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SctpHandle(pub usize);

/// Handle to a DCCP endpoint on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DccpHandle(pub usize);

/// Application behavior attached to an accepted TCP socket.
#[derive(Debug)]
enum TcpApp {
    /// Echo everything back.
    Echo,
    /// Serve length-framed DNS queries from the host's zone.
    DnsTcp { inbuf: Vec<u8> },
}

/// Application attached to a TCP listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListenerApp {
    /// Accept only; the driver reads/writes manually.
    Manual,
    /// Echo everything back (TCP-4's message-passing check).
    Echo,
    /// DNS-over-TCP service from the host zone.
    Dns,
}

#[derive(Debug)]
struct TcpListener {
    port: u16,
    app: ListenerApp,
    config: TcpConfig,
}

#[derive(Debug)]
struct UdpSocketState {
    port: u16,
    /// When set, the socket only receives datagrams addressed to this
    /// address and sends with it as the source (alias support).
    bound_addr: Option<Ipv4Addr>,
    recv: Vec<(SocketAddrV4, Vec<u8>)>,
    /// Echo datagrams back to the sender.
    echo: bool,
}

/// A complete simulated endpoint.
pub struct Host {
    /// Hostname for diagnostics.
    pub name: String,
    ifaces: Vec<Option<Iface>>,
    /// Extra addresses accepted (and usable as UDP source) per port.
    aliases: Vec<(PortId, Ipv4Addr)>,
    routes: RoutingTable,

    udp_sockets: Vec<Option<UdpSocketState>>,
    next_ephemeral: u16,

    tcp_sockets: Vec<Option<TcpSocket>>,
    tcp_apps: HashMap<usize, TcpApp>,
    tcp_listeners: Vec<TcpListener>,
    accepted: Vec<TcpHandle>,
    /// Default configuration for new sockets.
    pub tcp_config: TcpConfig,

    icmp_events: Vec<IcmpEvent>,
    echo_replies: Vec<(Instant, Ipv4Addr, u16, u16)>,
    /// Reply to incoming echo requests.
    pub respond_to_echo: bool,
    /// Generate ICMP port unreachable for UDP to closed ports.
    pub generate_port_unreachable: bool,

    sniffed: Option<Vec<(Instant, Vec<u8>)>>,

    sctp_endpoints: Vec<Option<SctpEndpoint>>,
    sctp_assocs: HashMap<(Ipv4Addr, u16, u16), SctpAssociation>,
    sctp_listen_ports: Vec<u16>,
    next_sctp_remote: HashMap<usize, (Ipv4Addr, u16)>,

    dccp_endpoints: Vec<Option<DccpEndpoint>>,
    dccp_conns: HashMap<(Ipv4Addr, u16, u16), DccpServerConn>,
    dccp_listen_ports: Vec<u16>,
    next_dccp_remote: HashMap<usize, (Ipv4Addr, u16)>,

    dns_zone: Option<DnsZone>,
    dhcp_servers: Vec<(PortId, DhcpServer)>,
    dhcp_client: Option<(PortId, DhcpClient)>,
    /// Forward packets between interfaces (router mode). Off for
    /// endpoints; the dual-NAT rendezvous server turns it on to play
    /// "the Internet" between two gateways.
    pub forwarding: bool,

    /// Earliest armed wake-up (to avoid redundant timers).
    armed_at: Option<Instant>,

    /// Scratch for collecting dispatched TCP segments each poll; kept on
    /// the host so the bulk-transfer hot path allocates nothing per poll.
    tcp_segs: Vec<TcpSegment>,
}

impl Host {
    /// Creates a host with no interfaces.
    pub fn new(name: &str) -> Host {
        Host {
            name: name.to_string(),
            ifaces: Vec::new(),
            aliases: Vec::new(),
            routes: RoutingTable::new(),
            udp_sockets: Vec::new(),
            next_ephemeral: 0,
            tcp_sockets: Vec::new(),
            tcp_apps: HashMap::new(),
            tcp_listeners: Vec::new(),
            accepted: Vec::new(),
            tcp_config: TcpConfig::default(),
            icmp_events: Vec::new(),
            echo_replies: Vec::new(),
            respond_to_echo: true,
            generate_port_unreachable: true,
            sniffed: None,
            sctp_endpoints: Vec::new(),
            sctp_assocs: HashMap::new(),
            sctp_listen_ports: Vec::new(),
            next_sctp_remote: HashMap::new(),
            dccp_endpoints: Vec::new(),
            dccp_conns: HashMap::new(),
            dccp_listen_ports: Vec::new(),
            next_dccp_remote: HashMap::new(),
            dns_zone: None,
            dhcp_servers: Vec::new(),
            dhcp_client: None,
            forwarding: false,
            armed_at: None,
            tcp_segs: Vec::new(),
        }
    }

    // ---------------- interfaces & routing ----------------

    /// Configures an interface on `port` and installs its connected route.
    pub fn add_iface(&mut self, port: PortId, config: IfaceConfig) {
        if self.ifaces.len() <= port.0 {
            self.ifaces.resize_with(port.0 + 1, || None);
        }
        self.ifaces[port.0] = Some(Iface { port, config });
        if config.is_configured() {
            self.routes.add(config.addr, config.prefix, port);
        }
    }

    /// Adds a route.
    pub fn add_route(&mut self, dest: Ipv4Addr, prefix: u8, port: PortId) {
        self.routes.add(dest, prefix, port);
    }

    /// Adds a default route out of `port`.
    pub fn add_default_route(&mut self, port: PortId) {
        self.routes.add_default(port);
    }

    /// The address of the interface on `port`.
    pub fn iface_addr(&self, port: PortId) -> Option<Ipv4Addr> {
        self.ifaces
            .get(port.0)
            .and_then(|i| i.as_ref())
            .filter(|i| i.config.is_configured())
            .map(|i| i.config.addr)
    }

    /// Adds an alias address on `port`: accepted on receive and usable as
    /// a UDP source via [`Host::udp_bind_at`]. Used by the classification
    /// probes, which need a second server identity (two remote addresses).
    pub fn add_alias(&mut self, port: PortId, addr: Ipv4Addr) {
        self.aliases.push((port, addr));
    }

    fn owns_addr(&self, addr: Ipv4Addr) -> bool {
        addr == Ipv4Addr::BROADCAST
            || self.ifaces.iter().flatten().any(|i| i.config.addr == addr)
            || self.aliases.iter().any(|(_, a)| *a == addr)
    }

    /// Routes and transmits an IP payload.
    fn send_ip(&mut self, ctx: &mut NodeCtx, mut repr: Ipv4Repr, payload: &[u8]) {
        let Some(port) = self.routes.lookup(repr.dst_addr) else {
            return; // no route: drop (counted nowhere; hosts log via stats if needed)
        };
        if repr.src_addr == Ipv4Addr::UNSPECIFIED {
            if let Some(addr) = self.iface_addr(port) {
                repr.src_addr = addr;
            }
        }
        let frame = repr.emit_with_payload_into(payload, ctx.alloc_frame(0));
        ctx.send_frame(port, frame);
    }

    /// Routes and transmits one TCP segment. This is the bulk zero-copy
    /// path: the segment buffer already holds the payload at its final wire
    /// offset behind [`SEGMENT_HEADROOM`](crate::tcp::SEGMENT_HEADROOM)
    /// reserved bytes, so for option-less headers both headers are written
    /// straight into that prefix and the buffer *becomes* the frame — the
    /// payload is copied exactly once end to end (send buffer → segment
    /// buffer, by the fused sum+copy pass that priced its checksum).
    fn send_tcp_segment(
        &mut self,
        ctx: &mut NodeCtx,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        seg: crate::tcp::TcpSegment,
    ) {
        let Some(port) = self.routes.lookup(dst) else {
            return; // no route: drop, same as send_ip
        };
        // The pseudo-header checksum always uses the socket's local address;
        // only the IP header source gets the unspecified-address fixup
        // (matching the order of operations of the send_ip path).
        let mut hdr_src = src;
        if hdr_src == Ipv4Addr::UNSPECIFIED {
            if let Some(addr) = self.iface_addr(port) {
                hdr_src = addr;
            }
        }
        let ip_repr = Ipv4Repr::new(hdr_src, dst, Protocol::Tcp);
        const IP_HDR: usize = 20;
        let headroom = crate::tcp::SEGMENT_HEADROOM;
        if seg.repr.header_len() == headroom - IP_HDR {
            // In-place emit: headers land in the reserved prefix.
            let (tcp_repr, mut frame, payload_sum) = seg.into_parts();
            let payload_len = frame.len() - headroom;
            ip_repr.write_header(frame.len() - IP_HDR, &mut frame[..IP_HDR]);
            tcp_repr.write_header_with_sum(
                src,
                dst,
                payload_len,
                payload_sum,
                &mut frame[IP_HDR..],
            );
            ctx.send_frame(port, frame);
        } else {
            // Option-bearing headers (SYN/SYN-ACK) don't fit the reserved
            // prefix; build the frame by appending as before.
            let mut frame = ctx.alloc_frame(0);
            frame.clear();
            ip_repr.emit_header_into(seg.repr.segment_len(seg.payload().len()), &mut frame);
            seg.repr.emit_with_payload_sum_onto(
                src,
                dst,
                seg.payload(),
                seg.payload_sum(),
                &mut frame,
            );
            ctx.send_frame(port, frame);
        }
    }

    /// Transmits an IP payload on an explicit port (broadcasts, DHCP).
    fn send_ip_on(&mut self, ctx: &mut NodeCtx, port: PortId, mut repr: Ipv4Repr, payload: &[u8]) {
        if repr.src_addr == Ipv4Addr::UNSPECIFIED {
            if let Some(addr) = self.iface_addr(port) {
                repr.src_addr = addr;
            }
        }
        let frame = repr.emit_with_payload_into(payload, ctx.alloc_frame(0));
        ctx.send_frame(port, frame);
    }

    /// Sends a fully formed IP packet, routing by its destination (used by
    /// the ICMP "hijack" prober to inject crafted packets).
    pub fn raw_send(&mut self, ctx: &mut NodeCtx, packet: Vec<u8>) {
        let Ok(view) = Ipv4Packet::new_checked(&packet[..]) else { return };
        let Some(port) = self.routes.lookup(view.dst_addr()) else { return };
        ctx.send_frame(port, packet);
    }

    fn forward_packet(&mut self, ctx: &mut NodeCtx, in_port: PortId, mut frame: Vec<u8>) {
        let dst = Ipv4Packet::new_unchecked(&frame[..]).dst_addr();
        let Some(out_port) = self.routes.lookup(dst) else { return };
        if out_port == in_port {
            return; // no U-turns on point-to-point links
        }
        let mut ip = Ipv4Packet::new_unchecked(&mut frame[..]);
        let ttl = ip.ttl();
        if ttl <= 1 {
            return; // expired in transit; no diagnostics needed here
        }
        ip.set_ttl(ttl - 1);
        ip.fill_checksum();
        ctx.send_frame(out_port, frame);
    }

    // ---------------- sniffer ----------------

    /// Enables recording of every received IP packet.
    pub fn sniff_enable(&mut self) {
        self.sniffed.get_or_insert_with(Vec::new);
    }

    /// Drains sniffed packets.
    pub fn sniff_take(&mut self) -> Vec<(Instant, Vec<u8>)> {
        self.sniffed.as_mut().map(std::mem::take).unwrap_or_default()
    }

    // ---------------- UDP ----------------

    /// Binds a UDP socket on `port` (any local address).
    pub fn udp_bind(&mut self, port: u16) -> UdpHandle {
        let state = UdpSocketState { port, bound_addr: None, recv: Vec::new(), echo: false };
        let idx = free_slot(&mut self.udp_sockets);
        self.udp_sockets[idx] = Some(state);
        UdpHandle(idx)
    }

    /// Binds a UDP socket to a specific local address (an interface address
    /// or an alias) and port.
    pub fn udp_bind_at(&mut self, addr: Ipv4Addr, port: u16) -> UdpHandle {
        let state = UdpSocketState { port, bound_addr: Some(addr), recv: Vec::new(), echo: false };
        let idx = free_slot(&mut self.udp_sockets);
        self.udp_sockets[idx] = Some(state);
        UdpHandle(idx)
    }

    /// Binds a UDP socket on a fresh ephemeral port.
    pub fn udp_bind_ephemeral(&mut self) -> UdpHandle {
        let port = self.alloc_ephemeral();
        self.udp_bind(port)
    }

    /// Marks a UDP socket as an echo service.
    pub fn udp_set_echo(&mut self, h: UdpHandle, on: bool) {
        self.udp_sockets[h.0].as_mut().expect("closed socket").echo = on;
    }

    /// The local port of a UDP socket.
    pub fn udp_local_port(&self, h: UdpHandle) -> u16 {
        self.udp_sockets[h.0].as_ref().expect("closed socket").port
    }

    /// Sends a datagram from socket `h` to `dst`.
    pub fn udp_send(&mut self, ctx: &mut NodeCtx, h: UdpHandle, dst: SocketAddrV4, payload: &[u8]) {
        let src_port = self.udp_local_port(h);
        let bound = self.udp_sockets[h.0].as_ref().and_then(|s| s.bound_addr);
        // The pseudo-header needs the source address: resolve the route now.
        let Some(port) = self.routes.lookup(*dst.ip()) else { return };
        let Some(src_addr) = bound.or_else(|| self.iface_addr(port)) else { return };
        let datagram = UdpRepr { src_port, dst_port: dst.port() }.emit_with_payload(
            src_addr,
            *dst.ip(),
            payload,
        );
        let repr = Ipv4Repr::new(src_addr, *dst.ip(), Protocol::Udp);
        self.send_ip_on(ctx, port, repr, &datagram);
        self.reschedule(ctx);
    }

    /// Receives a pending datagram, if any.
    pub fn udp_recv(&mut self, h: UdpHandle) -> Option<(SocketAddrV4, Vec<u8>)> {
        let s = self.udp_sockets[h.0].as_mut().expect("closed socket");
        if s.recv.is_empty() {
            None
        } else {
            Some(s.recv.remove(0))
        }
    }

    /// Closes a UDP socket.
    pub fn udp_close(&mut self, h: UdpHandle) {
        self.udp_sockets[h.0] = None;
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        loop {
            let port = 49_152 + (self.next_ephemeral % 16_384);
            self.next_ephemeral = self.next_ephemeral.wrapping_add(1);
            let in_use = self.udp_sockets.iter().flatten().any(|s| s.port == port)
                || self.tcp_sockets.iter().flatten().any(|s| s.local.port() == port);
            if !in_use {
                return port;
            }
        }
    }

    // ---------------- TCP ----------------

    /// Opens a TCP connection to `remote` from a fresh ephemeral port.
    pub fn tcp_connect(&mut self, ctx: &mut NodeCtx, remote: SocketAddrV4) -> TcpHandle {
        self.tcp_connect_with(ctx, remote, self.tcp_config)
    }

    /// Opens a TCP connection with an explicit socket configuration.
    pub fn tcp_connect_with(
        &mut self,
        ctx: &mut NodeCtx,
        remote: SocketAddrV4,
        config: TcpConfig,
    ) -> TcpHandle {
        let local_port = self.alloc_ephemeral();
        let local_addr = self
            .routes
            .lookup(*remote.ip())
            .and_then(|p| self.iface_addr(p))
            .unwrap_or(Ipv4Addr::UNSPECIFIED);
        let iss = SeqNumber(ctx.rng().next_u32());
        let socket = TcpSocket::client(
            SocketAddrV4::new(local_addr, local_port),
            remote,
            iss,
            config,
            ctx.now(),
        );
        let idx = free_slot(&mut self.tcp_sockets);
        self.tcp_sockets[idx] = Some(socket);
        self.poll(ctx);
        TcpHandle(idx)
    }

    /// Starts listening on `port` with the given accept-time application.
    pub fn tcp_listen(&mut self, port: u16, app: ListenerApp) {
        self.tcp_listen_with(port, app, self.tcp_config);
    }

    /// Starts listening with an explicit socket configuration.
    pub fn tcp_listen_with(&mut self, port: u16, app: ListenerApp, config: TcpConfig) {
        self.tcp_listeners.push(TcpListener { port, app, config });
    }

    /// Drains the list of newly accepted connections.
    pub fn tcp_accepted(&mut self) -> Vec<TcpHandle> {
        std::mem::take(&mut self.accepted)
    }

    /// Access to a TCP socket.
    pub fn tcp(&self, h: TcpHandle) -> &TcpSocket {
        self.tcp_sockets[h.0].as_ref().expect("closed socket")
    }

    /// Mutable access to a TCP socket (driver-side reads/writes); callers
    /// should invoke [`Host::kick`] afterwards so output is flushed.
    pub fn tcp_mut(&mut self, h: TcpHandle) -> &mut TcpSocket {
        self.tcp_sockets[h.0].as_mut().expect("closed socket")
    }

    /// True if the handle still refers to a socket.
    pub fn tcp_is_alive(&self, h: TcpHandle) -> bool {
        self.tcp_sockets.get(h.0).map(|s| s.is_some()).unwrap_or(false)
    }

    /// Queues data on a connection and flushes output.
    pub fn tcp_send(&mut self, ctx: &mut NodeCtx, h: TcpHandle, data: &[u8]) -> usize {
        let n = self.tcp_mut(h).send(data);
        self.poll(ctx);
        n
    }

    /// Reads received data from a connection.
    pub fn tcp_recv(&mut self, h: TcpHandle, max: usize) -> Vec<u8> {
        self.tcp_mut(h).recv(max)
    }

    /// Closes a connection (FIN) and flushes output.
    pub fn tcp_close(&mut self, ctx: &mut NodeCtx, h: TcpHandle) {
        self.tcp_mut(h).close();
        self.poll(ctx);
    }

    /// Releases a fully closed socket slot.
    pub fn tcp_remove(&mut self, h: TcpHandle) {
        self.tcp_sockets[h.0] = None;
        self.tcp_apps.remove(&h.0);
    }

    /// Flushes pending socket output and re-arms timers. Call after
    /// driver-side socket mutations.
    pub fn kick(&mut self, ctx: &mut NodeCtx) {
        self.poll(ctx);
    }

    // ---------------- ICMP ----------------

    /// Sends an ICMP echo request.
    pub fn ping(&mut self, ctx: &mut NodeCtx, dst: Ipv4Addr, ident: u16, seq: u16) {
        let msg = IcmpRepr::EchoRequest { ident, seq, payload: b"hgw-ping".to_vec() };
        let repr = Ipv4Repr::new(Ipv4Addr::UNSPECIFIED, dst, Protocol::Icmp);
        self.send_ip(ctx, repr, &msg.emit());
    }

    /// Drains recorded ICMP events (errors and informational).
    pub fn icmp_take_events(&mut self) -> Vec<IcmpEvent> {
        std::mem::take(&mut self.icmp_events)
    }

    /// Drains recorded echo replies `(at, from, ident, seq)`.
    pub fn ping_take_replies(&mut self) -> Vec<(Instant, Ipv4Addr, u16, u16)> {
        std::mem::take(&mut self.echo_replies)
    }

    // ---------------- SCTP ----------------

    /// Opens an SCTP association to `remote`.
    pub fn sctp_connect(&mut self, ctx: &mut NodeCtx, remote: SocketAddrV4) -> SctpHandle {
        let local_port = self.alloc_ephemeral();
        let vtag = ctx.rng().next_u32().max(1);
        let tsn = ctx.rng().next_u32();
        let mut ep = SctpEndpoint::client(local_port, remote.port(), vtag, tsn);
        ep.start(ctx.now());
        let idx = free_slot(&mut self.sctp_endpoints);
        self.sctp_endpoints[idx] = Some(ep);
        self.next_sctp_remote.insert(idx, (*remote.ip(), remote.port()));
        self.poll(ctx);
        SctpHandle(idx)
    }

    /// Listens for SCTP associations on `port` (echoing data).
    pub fn sctp_listen(&mut self, port: u16) {
        self.sctp_listen_ports.push(port);
    }

    /// Access to an SCTP endpoint.
    pub fn sctp(&self, h: SctpHandle) -> &SctpEndpoint {
        self.sctp_endpoints[h.0].as_ref().expect("closed endpoint")
    }

    /// Queues data on an association and flushes.
    pub fn sctp_send(&mut self, ctx: &mut NodeCtx, h: SctpHandle, data: Vec<u8>) {
        self.sctp_endpoints[h.0].as_mut().expect("closed endpoint").send(ctx.now(), data);
        self.poll(ctx);
    }

    // ---------------- DCCP ----------------

    /// Opens a DCCP connection to `remote`.
    pub fn dccp_connect(
        &mut self,
        ctx: &mut NodeCtx,
        remote: SocketAddrV4,
        service: u32,
    ) -> DccpHandle {
        let local_port = self.alloc_ephemeral();
        let iss = ctx.rng().next_u64() & 0xFFFF_FFFF_FFFF;
        let mut ep = DccpEndpoint::client(local_port, remote.port(), service, iss);
        ep.start(ctx.now());
        let idx = free_slot(&mut self.dccp_endpoints);
        self.dccp_endpoints[idx] = Some(ep);
        self.next_dccp_remote.insert(idx, (*remote.ip(), remote.port()));
        self.poll(ctx);
        DccpHandle(idx)
    }

    /// Listens for DCCP connections on `port` (echoing data).
    pub fn dccp_listen(&mut self, port: u16) {
        self.dccp_listen_ports.push(port);
    }

    /// Access to a DCCP endpoint.
    pub fn dccp(&self, h: DccpHandle) -> &DccpEndpoint {
        self.dccp_endpoints[h.0].as_ref().expect("closed endpoint")
    }

    /// Queues data on a DCCP connection and flushes.
    pub fn dccp_send(&mut self, ctx: &mut NodeCtx, h: DccpHandle, data: Vec<u8>) {
        self.dccp_endpoints[h.0].as_mut().expect("closed endpoint").send(data);
        self.poll(ctx);
    }

    // ---------------- DNS / DHCP services ----------------

    /// Serves the given zone on UDP and TCP port 53.
    pub fn enable_dns_server(&mut self, zone: DnsZone) {
        self.dns_zone = Some(zone);
        self.tcp_listen(53, ListenerApp::Dns);
    }

    /// Runs a DHCP server on `port` (one instance per port is allowed).
    pub fn enable_dhcp_server(&mut self, port: PortId, config: DhcpServerConfig) {
        self.dhcp_servers.push((port, DhcpServer::new(config)));
    }

    /// Runs a DHCP client on `port`; once bound it configures the interface,
    /// installs a default route, and remembers the offered DNS server.
    pub fn enable_dhcp_client(&mut self, port: PortId, chaddr: [u8; 6]) {
        self.dhcp_client = Some((
            port,
            DhcpClient::new(chaddr, u32::from_be_bytes(chaddr[2..6].try_into().unwrap())),
        ));
    }

    /// The DHCP client's lease, once bound.
    pub fn dhcp_lease(&self) -> Option<&crate::dhcp::DhcpLease> {
        self.dhcp_client.as_ref().and_then(|(_, c)| c.lease.as_ref())
    }

    /// Whether a DHCP client is configured on this host.
    pub fn dhcp_client_enabled(&self) -> bool {
        self.dhcp_client.is_some()
    }

    /// Turns lease auto-renewal on for the configured DHCP client (no-op
    /// without one). See [`crate::dhcp::DhcpClient::set_auto_renew`].
    pub fn dhcp_auto_renew(&mut self, on: bool) {
        if let Some((_, c)) = &mut self.dhcp_client {
            c.set_auto_renew(on);
        }
    }

    /// Lease renewals the DHCP client has completed.
    pub fn dhcp_renewals(&self) -> u64 {
        self.dhcp_client.as_ref().map_or(0, |(_, c)| c.renewals)
    }

    // ---------------- polling & timers ----------------

    fn poll(&mut self, ctx: &mut NodeCtx) {
        let now = ctx.now();

        // DHCP client.
        if self.dhcp_client.is_some() {
            let (port, msgs, bound) = {
                let (port, client) = self.dhcp_client.as_mut().unwrap();
                client.on_timer(now);
                (*port, client.dispatch(), client.lease.is_some())
            };
            let newly_bound = bound && self.iface_addr(port).is_none();
            for msg in msgs {
                let payload = UdpRepr { src_port: CLIENT_PORT, dst_port: SERVER_PORT }
                    .emit_with_payload(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, &msg.emit());
                let mut repr =
                    Ipv4Repr::new(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, Protocol::Udp);
                repr.src_addr = Ipv4Addr::UNSPECIFIED;
                ctx.send_frame(port, repr.emit_with_payload(&payload));
            }
            if newly_bound {
                let lease = self.dhcp_client.as_ref().unwrap().1.lease.clone().unwrap();
                let prefix = u32::from(lease.subnet_mask).leading_ones() as u8;
                self.add_iface(port, IfaceConfig::new(lease.addr, prefix));
                if lease.router.is_some() {
                    self.add_default_route(port);
                }
            }
        }

        // TCP sockets.
        for idx in 0..self.tcp_sockets.len() {
            let Some(sock) = self.tcp_sockets[idx].as_mut() else { continue };
            sock.on_timer(now);
            // Application pumps.
            match self.tcp_apps.get_mut(&idx) {
                Some(TcpApp::Echo) => {
                    loop {
                        let data = self.tcp_sockets[idx].as_mut().unwrap().recv(4096);
                        if data.is_empty() {
                            break;
                        }
                        self.tcp_sockets[idx].as_mut().unwrap().send(&data);
                    }
                    // A well-behaved echo service closes when the peer does.
                    let sock = self.tcp_sockets[idx].as_mut().unwrap();
                    if sock.state() == crate::tcp::TcpState::CloseWait && sock.send_queue_len() == 0
                    {
                        sock.close();
                    }
                }
                Some(TcpApp::DnsTcp { inbuf }) => {
                    let sock = self.tcp_sockets[idx].as_mut().unwrap();
                    let data = sock.recv(4096);
                    inbuf.extend_from_slice(&data);
                    let mut responses = Vec::new();
                    while let Ok((query, consumed)) = DnsMessage::parse_tcp(inbuf) {
                        inbuf.drain(..consumed);
                        if let Some(zone) = &self.dns_zone {
                            responses.push(zone.answer(&query).emit_tcp());
                        }
                    }
                    let sock = self.tcp_sockets[idx].as_mut().unwrap();
                    for resp in responses {
                        sock.send(&resp);
                    }
                }
                None => {}
            }
            let sock = self.tcp_sockets[idx].as_mut().unwrap();
            let mut segs = std::mem::take(&mut self.tcp_segs);
            sock.dispatch(now, &mut segs);
            let (local, remote) = (sock.local, sock.remote);
            let sent = segs.len();
            for seg in segs.drain(..) {
                self.send_tcp_segment(ctx, *local.ip(), *remote.ip(), seg);
            }
            // Segment buffers leave as frames and come back through the
            // simulator's frame pool once delivered; refill the socket's
            // spares from that pool so the circulation stays closed and
            // bulk transfers keep reusing one small buffer working set.
            if sent > 0 {
                if let Some(sock) = self.tcp_sockets[idx].as_mut() {
                    for _ in 0..sent {
                        if !sock.wants_spare() {
                            break;
                        }
                        let buf = ctx.alloc_frame(crate::tcp::SEGMENT_HEADROOM + 1460);
                        sock.recycle_payload(buf);
                    }
                }
            }
            self.tcp_segs = segs;
        }

        // SCTP endpoints.
        for idx in 0..self.sctp_endpoints.len() {
            let Some(ep) = self.sctp_endpoints[idx].as_mut() else { continue };
            ep.on_timer(now);
            let pkts = ep.dispatch();
            if let Some(&(raddr, _)) = self.next_sctp_remote.get(&idx) {
                for pkt in pkts {
                    let repr = Ipv4Repr::new(Ipv4Addr::UNSPECIFIED, raddr, Protocol::Sctp);
                    self.send_ip(ctx, repr, &pkt.emit());
                }
            }
        }

        // DCCP endpoints.
        for idx in 0..self.dccp_endpoints.len() {
            let Some(ep) = self.dccp_endpoints[idx].as_mut() else { continue };
            ep.on_timer(now);
            if let Some(&(raddr, _)) = self.next_dccp_remote.get(&idx) {
                let Some(port) = self.routes.lookup(raddr) else { continue };
                let Some(src) = self.iface_addr(port) else { continue };
                let ep = self.dccp_endpoints[idx].as_mut().unwrap();
                let pkts = ep.dispatch();
                for pkt in pkts {
                    let bytes = pkt.emit(src, raddr);
                    let repr = Ipv4Repr::new(src, raddr, Protocol::Dccp);
                    self.send_ip(ctx, repr, &bytes);
                }
            }
        }

        self.reschedule(ctx);
    }

    fn poll_at(&self) -> Option<Instant> {
        let tcp = self.tcp_sockets.iter().flatten().filter_map(|s| s.poll_at()).min();
        let sctp = self.sctp_endpoints.iter().flatten().filter_map(|s| s.poll_at()).min();
        let dccp = self.dccp_endpoints.iter().flatten().filter_map(|s| s.poll_at()).min();
        let dhcp = self.dhcp_client.as_ref().and_then(|(_, c)| c.poll_at());
        [tcp, sctp, dccp, dhcp].into_iter().flatten().min()
    }

    fn reschedule(&mut self, ctx: &mut NodeCtx) {
        if let Some(want) = self.poll_at() {
            let need_arm = match self.armed_at {
                Some(at) => want < at && at > ctx.now(),
                None => true,
            };
            if need_arm || self.armed_at.is_some_and(|at| at <= ctx.now()) {
                self.armed_at = Some(want);
                ctx.set_timer_at(want, TimerToken(0));
            }
        }
    }

    // ---------------- input dispatch ----------------

    fn handle_udp(
        &mut self,
        ctx: &mut NodeCtx,
        port: PortId,
        ip: &Ipv4Packet<&[u8]>,
        payload: &[u8],
    ) {
        let Ok(udp) = UdpPacket::new_checked(payload) else { return };
        if !udp.verify_checksum(ip.src_addr(), ip.dst_addr()) {
            return;
        }
        let src = SocketAddrV4::new(ip.src_addr(), udp.src_port());
        let dst_port = udp.dst_port();
        let data = udp.payload().to_vec();

        // DHCP server.
        if dst_port == SERVER_PORT && self.dhcp_servers.iter().any(|(p, _)| *p == port) {
            if let Ok(msg) = DhcpMessage::parse(&data) {
                let server = self.dhcp_servers.iter_mut().find(|(p, _)| *p == port).map(|(_, s)| s);
                let reply = server.and_then(|s| s.process(&msg));
                if let Some(reply) = reply {
                    let src_addr = self.iface_addr(port).unwrap_or(Ipv4Addr::UNSPECIFIED);
                    let dgram = UdpRepr { src_port: SERVER_PORT, dst_port: CLIENT_PORT }
                        .emit_with_payload(src_addr, Ipv4Addr::BROADCAST, &reply.emit());
                    let repr = Ipv4Repr::new(src_addr, Ipv4Addr::BROADCAST, Protocol::Udp);
                    self.send_ip_on(ctx, port, repr, &dgram);
                }
            }
            return;
        }
        // DHCP client.
        if dst_port == CLIENT_PORT {
            if let Some((cport, client)) = &mut self.dhcp_client {
                if *cport == port {
                    if let Ok(msg) = DhcpMessage::parse(&data) {
                        client.process(ctx.now(), &msg);
                        self.poll(ctx);
                    }
                    return;
                }
            }
        }
        // DNS server over UDP.
        if dst_port == 53 && self.dns_zone.is_some() {
            if let Ok(query) = DnsMessage::parse(&data) {
                if !query.is_response {
                    let resp = self.dns_zone.as_ref().unwrap().answer(&query);
                    let Some(eport) = self.routes.lookup(*src.ip()) else { return };
                    let Some(src_addr) = self.iface_addr(eport) else { return };
                    let dgram = UdpRepr { src_port: 53, dst_port: src.port() }.emit_with_payload(
                        src_addr,
                        *src.ip(),
                        &resp.emit(),
                    );
                    let repr = Ipv4Repr::new(src_addr, *src.ip(), Protocol::Udp);
                    self.send_ip(ctx, repr, &dgram);
                    return;
                }
            }
        }
        // Regular sockets: prefer an address-specific bind, then wildcard.
        let dst_addr = ip.dst_addr();
        let idx = self
            .udp_sockets
            .iter()
            .position(|s| {
                s.as_ref()
                    .map(|s| s.port == dst_port && s.bound_addr == Some(dst_addr))
                    .unwrap_or(false)
            })
            .or_else(|| {
                self.udp_sockets.iter().position(|s| {
                    s.as_ref()
                        .map(|s| s.port == dst_port && s.bound_addr.is_none())
                        .unwrap_or(false)
                })
            });
        if let Some(s) = idx.map(|i| self.udp_sockets[i].as_mut().unwrap()) {
            let echo = s.echo;
            s.recv.push((src, data.clone()));
            if echo {
                let h = UdpHandle(
                    self.udp_sockets
                        .iter()
                        .position(|s| s.as_ref().map(|x| x.port == dst_port).unwrap_or(false))
                        .unwrap(),
                );
                self.udp_send(ctx, h, src, &data);
            }
            return;
        }
        // Closed port: ICMP port unreachable embedding the whole packet.
        if self.generate_port_unreachable && ip.dst_addr() != Ipv4Addr::BROADCAST {
            let invoking = ip.clone().into_inner().to_vec();
            let msg =
                IcmpRepr::DestUnreachable { code: UnreachCode::PortUnreachable, mtu: 0, invoking };
            let repr = Ipv4Repr::new(Ipv4Addr::UNSPECIFIED, ip.src_addr(), Protocol::Icmp);
            self.send_ip(ctx, repr, &msg.emit());
        }
    }

    fn handle_tcp(&mut self, ctx: &mut NodeCtx, ip: &Ipv4Packet<&[u8]>, payload: &[u8]) {
        let Ok(tcp) = TcpPacket::new_checked(payload) else { return };
        if !tcp.verify_checksum(ip.src_addr(), ip.dst_addr()) {
            return;
        }
        // The checksum was just verified; parse_unverified skips the second
        // full-payload re-read that TcpRepr::parse would perform.
        let Ok(repr) = TcpRepr::parse_unverified(&tcp) else { return };
        let data = tcp.payload();
        let remote = SocketAddrV4::new(ip.src_addr(), repr.src_port);
        // Existing connection?
        let found = self.tcp_sockets.iter().position(|s| {
            s.as_ref()
                .map(|s| {
                    s.local.port() == repr.dst_port
                        && s.remote == remote
                        && s.local.ip() == &ip.dst_addr()
                })
                .unwrap_or(false)
        });
        if let Some(idx) = found {
            self.tcp_sockets[idx].as_mut().unwrap().process(ctx.now(), &repr, data);
            self.poll(ctx);
            return;
        }
        // Listener?
        if repr.flags.contains(TcpFlags::SYN) && !repr.flags.contains(TcpFlags::ACK) {
            if let Some(l) = self.tcp_listeners.iter().find(|l| l.port == repr.dst_port) {
                let app = l.app;
                let config = l.config;
                let iss = SeqNumber(ctx.rng().next_u32());
                let local = SocketAddrV4::new(ip.dst_addr(), repr.dst_port);
                let socket = TcpSocket::server(local, remote, iss, config, &repr, ctx.now());
                let idx = free_slot(&mut self.tcp_sockets);
                self.tcp_sockets[idx] = Some(socket);
                match app {
                    ListenerApp::Echo => {
                        self.tcp_apps.insert(idx, TcpApp::Echo);
                    }
                    ListenerApp::Dns => {
                        self.tcp_apps.insert(idx, TcpApp::DnsTcp { inbuf: Vec::new() });
                    }
                    ListenerApp::Manual => {}
                }
                self.accepted.push(TcpHandle(idx));
                self.poll(ctx);
                return;
            }
        }
        // No socket: RST (unless the segment itself is a RST).
        if !repr.flags.contains(TcpFlags::RST) {
            let mut rst = TcpRepr::new(repr.dst_port, repr.src_port, TcpFlags::RST);
            if repr.flags.contains(TcpFlags::ACK) {
                rst.seq = repr.ack;
            } else {
                rst.flags |= TcpFlags::ACK;
                rst.ack = repr.seq.add(data.len() as u32 + 1);
            }
            rst.window = 0;
            let bytes = rst.emit_with_payload(ip.dst_addr(), ip.src_addr(), &[]);
            let ip_repr = Ipv4Repr::new(ip.dst_addr(), ip.src_addr(), Protocol::Tcp);
            self.send_ip(ctx, ip_repr, &bytes);
        }
    }

    fn handle_icmp(&mut self, ctx: &mut NodeCtx, ip: &Ipv4Packet<&[u8]>, payload: &[u8]) {
        let Ok(msg) = IcmpRepr::parse(payload) else { return };
        match &msg {
            IcmpRepr::EchoRequest { ident, seq, payload } => {
                if self.respond_to_echo {
                    let reply =
                        IcmpRepr::EchoReply { ident: *ident, seq: *seq, payload: payload.clone() };
                    let repr = Ipv4Repr::new(ip.dst_addr(), ip.src_addr(), Protocol::Icmp);
                    self.send_ip(ctx, repr, &reply.emit());
                }
            }
            IcmpRepr::EchoReply { ident, seq, .. } => {
                self.echo_replies.push((ctx.now(), ip.src_addr(), *ident, *seq));
            }
            other => {
                let embedded = other.invoking().and_then(parse_embedded);
                self.icmp_events.push(IcmpEvent {
                    at: ctx.now(),
                    from: ip.src_addr(),
                    message: msg.clone(),
                    embedded,
                });
            }
        }
    }

    fn handle_sctp(&mut self, ctx: &mut NodeCtx, ip: &Ipv4Packet<&[u8]>, payload: &[u8]) {
        let Ok(pkt) = SctpRepr::parse(payload) else { return };
        let from = ip.src_addr();
        // Client endpoints.
        for idx in 0..self.sctp_endpoints.len() {
            let matches = self.sctp_endpoints[idx]
                .as_ref()
                .map(|ep| {
                    ep.local_port == pkt.dst_port
                        && self
                            .next_sctp_remote
                            .get(&idx)
                            .map(|(a, p)| *a == from && *p == pkt.src_port)
                            .unwrap_or(false)
                })
                .unwrap_or(false);
            if matches {
                self.sctp_endpoints[idx].as_mut().unwrap().process(ctx.now(), &pkt);
                self.poll(ctx);
                return;
            }
        }
        // Server role.
        if self.sctp_listen_ports.contains(&pkt.dst_port) {
            let replies = self.sctp_server_react(ctx, from, &pkt);
            for reply in replies {
                let repr = Ipv4Repr::new(ip.dst_addr(), from, Protocol::Sctp);
                self.send_ip(ctx, repr, &reply.emit());
            }
        }
    }

    fn sctp_server_react(
        &mut self,
        ctx: &mut NodeCtx,
        from: Ipv4Addr,
        pkt: &SctpRepr,
    ) -> Vec<SctpRepr> {
        let key = (from, pkt.src_port, pkt.dst_port);
        let mut out = Vec::new();
        for chunk in &pkt.chunks {
            match chunk {
                Chunk::Init { init_tag, initial_tsn, .. } => {
                    // Stateless INIT-ACK carrying the peer state in the cookie.
                    let my_vtag = ctx.rng().next_u32().max(1);
                    let cookie =
                        [init_tag.to_be_bytes(), my_vtag.to_be_bytes(), initial_tsn.to_be_bytes()]
                            .concat();
                    out.push(SctpRepr {
                        src_port: pkt.dst_port,
                        dst_port: pkt.src_port,
                        verification_tag: *init_tag,
                        chunks: vec![Chunk::InitAck {
                            init_tag: my_vtag,
                            a_rwnd: 65_536,
                            outbound_streams: 1,
                            inbound_streams: 1,
                            initial_tsn: 1,
                            cookie,
                        }],
                    });
                }
                Chunk::CookieEcho { cookie } if cookie.len() >= 12 => {
                    let peer_vtag = u32::from_be_bytes(cookie[0..4].try_into().unwrap());
                    let my_vtag = u32::from_be_bytes(cookie[4..8].try_into().unwrap());
                    let peer_tsn = u32::from_be_bytes(cookie[8..12].try_into().unwrap());
                    if pkt.verification_tag == my_vtag {
                        self.sctp_assocs.entry(key).or_insert(SctpAssociation {
                            peer_vtag,
                            my_vtag,
                            my_tsn: 1,
                            peer_cum_tsn: peer_tsn.wrapping_sub(1),
                            received: Vec::new(),
                            echo: true,
                        });
                        out.push(SctpRepr {
                            src_port: pkt.dst_port,
                            dst_port: pkt.src_port,
                            verification_tag: peer_vtag,
                            chunks: vec![Chunk::CookieAck],
                        });
                    }
                }
                Chunk::Data { tsn, data, .. } => {
                    if let Some(a) = self.sctp_assocs.get_mut(&key) {
                        if pkt.verification_tag != a.my_vtag {
                            continue;
                        }
                        let mut chunks = Vec::new();
                        if *tsn == a.peer_cum_tsn.wrapping_add(1) {
                            a.peer_cum_tsn = *tsn;
                            a.received.push(data.clone());
                            if a.echo {
                                chunks.push(Chunk::Data {
                                    tsn: a.my_tsn,
                                    stream_id: 0,
                                    stream_seq: 0,
                                    ppid: 0,
                                    data: data.clone(),
                                });
                                a.my_tsn = a.my_tsn.wrapping_add(1);
                            }
                        }
                        chunks.insert(0, Chunk::Sack { cum_tsn: a.peer_cum_tsn, a_rwnd: 65_536 });
                        out.push(SctpRepr {
                            src_port: pkt.dst_port,
                            dst_port: pkt.src_port,
                            verification_tag: a.peer_vtag,
                            chunks,
                        });
                    }
                }
                Chunk::Sack { .. } => {}
                Chunk::Shutdown { .. } => {
                    if let Some(a) = self.sctp_assocs.get(&key) {
                        out.push(SctpRepr {
                            src_port: pkt.dst_port,
                            dst_port: pkt.src_port,
                            verification_tag: a.peer_vtag,
                            chunks: vec![Chunk::ShutdownAck],
                        });
                    }
                }
                Chunk::ShutdownComplete => {
                    self.sctp_assocs.remove(&key);
                }
                _ => {}
            }
        }
        out
    }

    fn handle_dccp(&mut self, ctx: &mut NodeCtx, ip: &Ipv4Packet<&[u8]>, payload: &[u8]) {
        let Ok(pkt) = DccpRepr::parse(payload, ip.src_addr(), ip.dst_addr()) else { return };
        let from = ip.src_addr();
        // Client endpoints.
        for idx in 0..self.dccp_endpoints.len() {
            let matches = self.dccp_endpoints[idx]
                .as_ref()
                .map(|ep| {
                    ep.local_port == pkt.dst_port
                        && self
                            .next_dccp_remote
                            .get(&idx)
                            .map(|(a, p)| *a == from && *p == pkt.src_port)
                            .unwrap_or(false)
                })
                .unwrap_or(false);
            if matches {
                self.dccp_endpoints[idx].as_mut().unwrap().process(ctx.now(), &pkt);
                self.poll(ctx);
                return;
            }
        }
        // Server role.
        if self.dccp_listen_ports.contains(&pkt.dst_port) {
            let key = (from, pkt.src_port, pkt.dst_port);
            let mut replies: Vec<DccpRepr> = Vec::new();
            match pkt.packet_type {
                hgw_wire::dccp::DccpType::Request => {
                    let iss = ctx.rng().next_u64() & 0xFFFF_FFFF_FFFF;
                    let conn = self.dccp_conns.entry(key).or_insert(DccpServerConn {
                        seq: iss,
                        peer_seq: pkt.seq,
                        established: false,
                        received: Vec::new(),
                        echo: true,
                    });
                    replies.push(DccpRepr {
                        src_port: pkt.dst_port,
                        dst_port: pkt.src_port,
                        packet_type: hgw_wire::dccp::DccpType::Response,
                        seq: conn.seq,
                        ack: Some(pkt.seq),
                        service_code: pkt.service_code,
                        payload: Vec::new(),
                    });
                }
                hgw_wire::dccp::DccpType::Ack => {
                    if let Some(c) = self.dccp_conns.get_mut(&key) {
                        c.established = true;
                        c.peer_seq = pkt.seq;
                    }
                }
                hgw_wire::dccp::DccpType::Data | hgw_wire::dccp::DccpType::DataAck => {
                    if let Some(c) = self.dccp_conns.get_mut(&key) {
                        c.established = true;
                        c.peer_seq = pkt.seq;
                        c.received.push(pkt.payload.clone());
                        if c.echo {
                            c.seq = (c.seq + 1) & 0xFFFF_FFFF_FFFF;
                            replies.push(DccpRepr {
                                src_port: pkt.dst_port,
                                dst_port: pkt.src_port,
                                packet_type: hgw_wire::dccp::DccpType::DataAck,
                                seq: c.seq,
                                ack: Some(c.peer_seq),
                                service_code: None,
                                payload: pkt.payload.clone(),
                            });
                        }
                    }
                }
                _ => {}
            }
            for reply in replies {
                let bytes = reply.emit(ip.dst_addr(), from);
                let repr = Ipv4Repr::new(ip.dst_addr(), from, Protocol::Dccp);
                self.send_ip(ctx, repr, &bytes);
            }
        }
    }

    /// Server-side DCCP connections observed (for the probe's pass/fail).
    pub fn dccp_server_conns(&self) -> &HashMap<(Ipv4Addr, u16, u16), DccpServerConn> {
        &self.dccp_conns
    }

    /// Server-side SCTP associations observed.
    pub fn sctp_server_assocs(&self) -> &HashMap<(Ipv4Addr, u16, u16), SctpAssociation> {
        &self.sctp_assocs
    }
}

/// Finds or creates a free slot in a socket table.
fn free_slot<T>(v: &mut Vec<Option<T>>) -> usize {
    if let Some(i) = v.iter().position(|s| s.is_none()) {
        i
    } else {
        v.push(None);
        v.len() - 1
    }
}

impl Node for Host {
    fn start(&mut self, ctx: &mut NodeCtx) {
        if let Some((_, client)) = &mut self.dhcp_client {
            client.start(ctx.now());
        }
        self.poll(ctx);
    }

    fn handle_frame(&mut self, ctx: &mut NodeCtx, port: PortId, frame: &mut Vec<u8>) {
        if let Some(buf) = &mut self.sniffed {
            buf.push((ctx.now(), frame.clone()));
        }
        let Ok(ip) = Ipv4Packet::new_checked(&frame[..]) else { return };
        if !ip.verify_checksum() {
            return;
        }
        let dst = ip.dst_addr();
        // Accept packets addressed to us or broadcast; an interface still
        // waiting for DHCP accepts anything (it has no address to match).
        if !self.owns_addr(dst) && self.iface_addr(port).is_some() {
            if self.forwarding {
                let frame = std::mem::take(frame);
                self.forward_packet(ctx, port, frame);
            }
            return;
        }
        let payload = ip.payload();
        match ip.protocol() {
            Protocol::Udp => self.handle_udp(ctx, port, &ip, payload),
            Protocol::Tcp => self.handle_tcp(ctx, &ip, payload),
            Protocol::Icmp => self.handle_icmp(ctx, &ip, payload),
            Protocol::Sctp => self.handle_sctp(ctx, &ip, payload),
            Protocol::Dccp => self.handle_dccp(ctx, &ip, payload),
            Protocol::Unknown(_) => {}
        }
        self.reschedule(ctx);
    }

    fn handle_timer(&mut self, ctx: &mut NodeCtx, _token: TimerToken) {
        self.armed_at = None;
        self.poll(ctx);
    }

    impl_node_downcast!();
}
