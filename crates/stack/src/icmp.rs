//! ICMP event records and embedded-packet analysis.
//!
//! The paper's ICMP experiment judges a gateway by what arrives at the test
//! client: was the ICMP error forwarded at all, was the transport header
//! inside its payload rewritten back to the private address/port, and are
//! the embedded checksums still valid? [`EmbeddedPacket`] extracts exactly
//! those observables.

use std::net::Ipv4Addr;

use hgw_core::Instant;
use hgw_wire::icmp::IcmpRepr;
use hgw_wire::ip::Protocol;
use hgw_wire::{Ipv4Packet, TcpPacket, UdpPacket};

/// The parsed view of the invoking packet embedded in an ICMP error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedPacket {
    /// Source address of the embedded header.
    pub src: Ipv4Addr,
    /// Destination address of the embedded header.
    pub dst: Ipv4Addr,
    /// Transport protocol of the embedded packet.
    pub protocol: Protocol,
    /// Embedded transport source port (0 when not parseable).
    pub src_port: u16,
    /// Embedded transport destination port (0 when not parseable).
    pub dst_port: u16,
    /// Whether the embedded IP header checksum verifies.
    pub ip_checksum_ok: bool,
    /// Whether the embedded transport checksum verifies; `None` when the
    /// payload is too truncated to tell.
    pub l4_checksum_ok: Option<bool>,
}

/// Parses the invoking packet from an ICMP error payload.
pub fn parse_embedded(invoking: &[u8]) -> Option<EmbeddedPacket> {
    if invoking.len() < 20 {
        return None;
    }
    // The embedded packet may be truncated, so bypass total-length checks.
    let packet = Ipv4Packet::new_unchecked(invoking);
    if packet.version() != 4 || packet.header_len() < 20 || invoking.len() < packet.header_len() {
        return None;
    }
    let hl = packet.header_len();
    let ip_checksum_ok = packet.verify_checksum();
    let src = packet.src_addr();
    let dst = packet.dst_addr();
    let protocol = packet.protocol();
    let l4 = &invoking[hl..];
    let (src_port, dst_port) = if l4.len() >= 4 {
        (u16::from_be_bytes([l4[0], l4[1]]), u16::from_be_bytes([l4[2], l4[3]]))
    } else {
        (0, 0)
    };
    // Verify the transport checksum when the whole datagram is present
    // (our testbed's ICMP generator embeds complete packets, so a NAT that
    // forgets the fixup is detectable).
    let l4_checksum_ok = match protocol {
        Protocol::Udp => {
            if let Ok(udp) = UdpPacket::new_checked(l4) {
                Some(udp.verify_checksum(src, dst))
            } else {
                None
            }
        }
        Protocol::Tcp => {
            let claimed = packet.total_len();
            if claimed >= hl && l4.len() >= claimed - hl && TcpPacket::new_checked(l4).is_ok() {
                Some(TcpPacket::new_unchecked(&l4[..claimed - hl]).verify_checksum(src, dst))
            } else {
                None
            }
        }
        _ => None,
    };
    Some(EmbeddedPacket { src, dst, protocol, src_port, dst_port, ip_checksum_ok, l4_checksum_ok })
}

/// A received ICMP message, recorded for the measurement driver.
#[derive(Debug, Clone)]
pub struct IcmpEvent {
    /// Arrival time.
    pub at: Instant,
    /// IP source of the ICMP packet.
    pub from: Ipv4Addr,
    /// The message itself.
    pub message: IcmpRepr,
    /// Parsed invoking packet for error messages.
    pub embedded: Option<EmbeddedPacket>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgw_wire::ip::Ipv4Repr;
    use hgw_wire::udp::UdpRepr;

    fn udp_packet() -> Vec<u8> {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        let udp = UdpRepr { src_port: 4321, dst_port: 53 }.emit_with_payload(src, dst, b"probe");
        Ipv4Repr::new(src, dst, Protocol::Udp).emit_with_payload(&udp)
    }

    #[test]
    fn parses_full_udp_invoking_packet() {
        let pkt = udp_packet();
        let e = parse_embedded(&pkt).unwrap();
        assert_eq!(e.src, Ipv4Addr::new(192, 168, 1, 2));
        assert_eq!(e.dst, Ipv4Addr::new(10, 0, 1, 1));
        assert_eq!(e.protocol, Protocol::Udp);
        assert_eq!(e.src_port, 4321);
        assert_eq!(e.dst_port, 53);
        assert!(e.ip_checksum_ok);
        assert_eq!(e.l4_checksum_ok, Some(true));
    }

    #[test]
    fn detects_stale_ip_checksum_after_rewrite() {
        // Simulate the zy1/ls1 bug: rewrite the embedded source address
        // without fixing the embedded header checksum.
        let mut pkt = udp_packet();
        pkt[12..16].copy_from_slice(&Ipv4Addr::new(10, 0, 1, 77).octets());
        let e = parse_embedded(&pkt).unwrap();
        assert!(!e.ip_checksum_ok);
    }

    #[test]
    fn detects_unrewritten_ports() {
        let pkt = udp_packet();
        let e = parse_embedded(&pkt).unwrap();
        // Whether these are "right" is the prober's judgment; parsing just
        // exposes them faithfully.
        assert_eq!((e.src_port, e.dst_port), (4321, 53));
    }

    #[test]
    fn truncated_payload_yields_unknown_l4_state() {
        let pkt = udp_packet();
        let e = parse_embedded(&pkt[..24]).unwrap(); // header + 4 bytes only
        assert_eq!(e.l4_checksum_ok, None);
        assert_eq!(e.src_port, 4321);
    }

    #[test]
    fn garbage_yields_none() {
        assert!(parse_embedded(&[0u8; 8]).is_none());
        assert!(parse_embedded(&[0xFFu8; 40]).is_none());
    }
}
