//! # hgw-stack — the endpoint network stack
//!
//! Complete simulated hosts for the home-gateway testbed: IPv4 I/O with
//! routing ([`iface`]), UDP sockets, a full TCP implementation with Reno
//! congestion control ([`tcp`]), ICMP handling ([`icmp`]), minimal SCTP and
//! DCCP endpoints ([`sctp`], [`dccp`]), a DNS server ([`dns`]) and DHCP
//! client/server ([`dhcp`]) — all integrated in the [`Host`] node.
//!
//! The test client and test server of the paper's Figure 1 are both
//! instances of [`Host`]; experiment drivers steer them through
//! [`hgw_core::Simulator::with_node`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod dccp;
pub mod dhcp;
pub mod dns;
pub mod host;
pub mod icmp;
pub mod iface;
pub mod sctp;
pub mod switch;
pub mod tcp;

pub use host::{DccpHandle, Host, ListenerApp, SctpHandle, TcpHandle, UdpHandle};
pub use iface::{IfaceConfig, RoutingTable};
pub use switch::Switch;
pub use tcp::{TcpConfig, TcpError, TcpSocket, TcpState};
