//! A learning LAN switch for multi-host topologies.
//!
//! The paper's Figure 1 wires exactly one client to each gateway, so the
//! seed testbed used point-to-point links only. Household topologies put
//! M hosts behind one gateway; since simulator links are strictly
//! point-to-point, the fan-in is modelled by this switch node.
//!
//! Frames in this project are raw IPv4 packets (no Ethernet header), so
//! the switch learns *source IP addresses* instead of MAC addresses:
//!
//! * a frame whose source is a real unicast address pins that address to
//!   its ingress port (hosts can move; the latest sighting wins);
//! * a frame to a learned unicast destination is forwarded on that port
//!   alone;
//! * broadcasts (`255.255.255.255`, e.g. DHCP) and frames to unknown
//!   destinations flood every port except the ingress one — exactly a
//!   real switch's behavior before its CAM table warms up.
//!
//! The switch is entirely deterministic: it draws no randomness and keeps
//! its learning table keyed by exact addresses, so forwarding decisions
//! depend only on the frame sequence.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use hgw_core::{impl_node_downcast, Node, NodeCtx, PortId};

/// A learning, flooding LAN switch (see the module docs for semantics).
#[derive(Debug)]
pub struct Switch {
    /// Human-readable name (diagnostics only).
    pub name: String,
    ports: usize,
    table: HashMap<Ipv4Addr, PortId>,
    /// Frames forwarded to a single learned port.
    pub forwarded: u64,
    /// Frames flooded to all other ports (broadcast or unknown unicast).
    pub flooded: u64,
}

impl Switch {
    /// Creates a switch with `ports` ports (`PortId(0)..PortId(ports)`).
    pub fn new(name: &str, ports: usize) -> Switch {
        Switch { name: name.to_string(), ports, table: HashMap::new(), forwarded: 0, flooded: 0 }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The port an address was last learned on, if any.
    pub fn learned_port(&self, addr: Ipv4Addr) -> Option<PortId> {
        self.table.get(&addr).copied()
    }

    /// Number of learned addresses.
    pub fn learned_count(&self) -> usize {
        self.table.len()
    }
}

impl Node for Switch {
    fn handle_frame(&mut self, ctx: &mut NodeCtx, port: PortId, frame: &mut Vec<u8>) {
        // A raw IPv4 header is at least 20 bytes; src/dst live at fixed
        // offsets. Malformed runts are dropped silently (endpoints verify
        // checksums themselves).
        if frame.len() < 20 {
            return;
        }
        let src = Ipv4Addr::new(frame[12], frame[13], frame[14], frame[15]);
        let dst = Ipv4Addr::new(frame[16], frame[17], frame[18], frame[19]);
        if !src.is_unspecified() && src != Ipv4Addr::BROADCAST {
            self.table.insert(src, port);
        }
        match self.table.get(&dst) {
            Some(&out) if dst != Ipv4Addr::BROADCAST => {
                if out != port {
                    self.forwarded += 1;
                    ctx.send_frame(out, std::mem::take(frame));
                }
            }
            _ => {
                self.flooded += 1;
                for p in 0..self.ports {
                    if PortId(p) != port {
                        let mut copy = ctx.alloc_frame(frame.len());
                        copy.extend_from_slice(frame);
                        ctx.send_frame(PortId(p), copy);
                    }
                }
            }
        }
    }

    fn handle_timer(&mut self, _ctx: &mut NodeCtx, _token: hgw_core::TimerToken) {}

    impl_node_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgw_core::{Duration, LinkConfig, NodeId, Simulator, TimerToken};

    /// Records every frame it receives; sends one prepared frame at boot.
    struct Tap {
        emit: Option<Vec<u8>>,
        got: Vec<Vec<u8>>,
    }

    impl Node for Tap {
        fn start(&mut self, ctx: &mut NodeCtx) {
            if let Some(f) = self.emit.take() {
                ctx.send_frame(PortId(0), f);
            }
        }
        fn handle_frame(&mut self, _ctx: &mut NodeCtx, _port: PortId, frame: &mut Vec<u8>) {
            self.got.push(std::mem::take(frame));
        }
        fn handle_timer(&mut self, _ctx: &mut NodeCtx, _token: TimerToken) {}
        impl_node_downcast!();
    }

    fn frame(src: [u8; 4], dst: [u8; 4]) -> Vec<u8> {
        let mut f = vec![0u8; 20];
        f[12..16].copy_from_slice(&src);
        f[16..20].copy_from_slice(&dst);
        f
    }

    /// 3-port switch with a Tap on each port; `emits[i]` is sent by tap i.
    fn wired(emits: [Option<Vec<u8>>; 3]) -> (Simulator, NodeId, [NodeId; 3]) {
        let mut sim = Simulator::new(7);
        let sw = sim.add_node(Box::new(Switch::new("sw", 3)));
        let taps = emits.map(|emit| sim.add_node(Box::new(Tap { emit, got: Vec::new() })));
        for (i, tap) in taps.iter().enumerate() {
            sim.connect(sw, PortId(i), *tap, PortId(0), LinkConfig::ethernet_100m());
        }
        sim.boot();
        sim.run_for(Duration::from_millis(10));
        (sim, sw, taps)
    }

    fn got(sim: &mut Simulator, tap: NodeId) -> Vec<Vec<u8>> {
        sim.with_node::<Tap, _>(tap, |t, _| std::mem::take(&mut t.got))
    }

    #[test]
    fn floods_unknown_and_learns_source() {
        let f = frame([10, 0, 0, 1], [10, 0, 0, 2]);
        let (mut sim, sw, taps) = wired([Some(f), None, None]);
        // Unknown destination: flooded to the two other ports only.
        assert!(got(&mut sim, taps[0]).is_empty());
        assert_eq!(got(&mut sim, taps[1]).len(), 1);
        assert_eq!(got(&mut sim, taps[2]).len(), 1);
        sim.with_node::<Switch, _>(sw, |s, _| {
            assert_eq!(s.learned_port(Ipv4Addr::new(10, 0, 0, 1)), Some(PortId(0)));
            assert_eq!(s.flooded, 1);
        });
        // A reply to the learned address goes out port 0 alone.
        sim.with_node::<Tap, _>(taps[2], |_, ctx| {
            ctx.send_frame(PortId(0), frame([10, 0, 0, 2], [10, 0, 0, 1]));
        });
        sim.run_for(Duration::from_millis(10));
        assert_eq!(got(&mut sim, taps[0]).len(), 1);
        assert!(got(&mut sim, taps[1]).is_empty());
        sim.with_node::<Switch, _>(sw, |s, _| assert_eq!(s.forwarded, 1));
    }

    #[test]
    fn broadcast_always_floods_and_unspecified_is_not_learned() {
        let f = frame([0, 0, 0, 0], [255, 255, 255, 255]);
        let (mut sim, sw, taps) = wired([None, Some(f), None]);
        assert_eq!(got(&mut sim, taps[0]).len(), 1);
        assert!(got(&mut sim, taps[1]).is_empty());
        assert_eq!(got(&mut sim, taps[2]).len(), 1);
        sim.with_node::<Switch, _>(sw, |s, _| assert_eq!(s.learned_count(), 0));
    }

    #[test]
    fn runt_frames_are_dropped() {
        let (mut sim, _, taps) = wired([Some(vec![1, 2, 3]), None, None]);
        assert!(got(&mut sim, taps[1]).is_empty());
        assert!(got(&mut sim, taps[2]).is_empty());
    }

    #[test]
    fn relearning_moves_an_address() {
        let f = frame([10, 0, 0, 1], [10, 0, 0, 9]);
        let (mut sim, sw, _) = wired([Some(f.clone()), Some(f), None]);
        sim.with_node::<Switch, _>(sw, |s, _| {
            // Both taps emitted the same source; the later sighting wins.
            // (Delivery order between equal-boot emissions is the node add
            // order, so tap 1's copy arrives second.)
            assert_eq!(s.learned_port(Ipv4Addr::new(10, 0, 0, 1)), Some(PortId(1)));
        });
    }
}
