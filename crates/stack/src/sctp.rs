//! A minimal single-homed SCTP endpoint: the four-way association setup
//! (INIT / INIT-ACK / COOKIE-ECHO / COOKIE-ACK), DATA/SACK exchange and
//! SHUTDOWN — exactly what the paper's SCTP connectivity probe needs
//! (§3.2.3: "we attempt to create a single connection and exchange data").

use hgw_core::{Duration, Instant};
use hgw_wire::sctp::{Chunk, SctpRepr};

/// Association states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SctpState {
    /// Nothing sent yet.
    Closed,
    /// INIT sent, waiting for INIT-ACK.
    CookieWait,
    /// COOKIE-ECHO sent, waiting for COOKIE-ACK.
    CookieEchoed,
    /// Association up.
    Established,
    /// SHUTDOWN sent.
    ShutdownSent,
    /// Gracefully closed.
    Done,
    /// Setup or transfer gave up.
    Failed,
}

/// Retransmission attempts for setup chunks.
const MAX_RETRIES: u32 = 4;
/// Interval between setup retransmissions.
const RTX_INTERVAL: Duration = Duration::from_secs(2);

/// A client-side SCTP association endpoint.
///
/// The server side is handled statelessly by the host (INIT → INIT-ACK with
/// cookie, COOKIE-ECHO → association), mirroring RFC 4960's
/// denial-of-service-resistant design.
#[derive(Debug)]
pub struct SctpEndpoint {
    /// Local port.
    pub local_port: u16,
    /// Remote port.
    pub remote_port: u16,
    state: SctpState,
    /// Our verification tag (peer puts it in packets to us).
    pub my_vtag: u32,
    /// Peer's verification tag (we put it in packets to them).
    peer_vtag: u32,
    my_tsn: u32,
    peer_cum_tsn: u32,
    cookie: Vec<u8>,
    /// Data received in order of arrival.
    pub received: Vec<Vec<u8>>,
    /// Data queued for transmission once established.
    tx_queue: Vec<Vec<u8>>,
    /// TSNs in flight awaiting SACK.
    unacked: u32,
    rtx_deadline: Option<Instant>,
    retries: u32,
    /// Packets ready to transmit.
    outbox: Vec<SctpRepr>,
}

impl SctpEndpoint {
    /// Creates a client endpoint; call [`SctpEndpoint::start`] to emit INIT.
    pub fn client(
        local_port: u16,
        remote_port: u16,
        my_vtag: u32,
        initial_tsn: u32,
    ) -> SctpEndpoint {
        SctpEndpoint {
            local_port,
            remote_port,
            state: SctpState::Closed,
            my_vtag,
            peer_vtag: 0,
            my_tsn: initial_tsn,
            peer_cum_tsn: 0,
            cookie: Vec::new(),
            received: Vec::new(),
            tx_queue: Vec::new(),
            unacked: 0,
            rtx_deadline: None,
            retries: 0,
            outbox: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> SctpState {
        self.state
    }

    /// Begins association setup.
    pub fn start(&mut self, now: Instant) {
        debug_assert_eq!(self.state, SctpState::Closed);
        self.state = SctpState::CookieWait;
        self.push_init();
        self.arm(now);
    }

    fn arm(&mut self, now: Instant) {
        self.rtx_deadline = Some(now + RTX_INTERVAL);
    }

    /// Next deadline, if any.
    pub fn poll_at(&self) -> Option<Instant> {
        self.rtx_deadline
    }

    /// Handles timer expiry: retransmit the current setup chunk or fail.
    pub fn on_timer(&mut self, now: Instant) {
        let Some(t) = self.rtx_deadline else { return };
        if now < t {
            return;
        }
        self.rtx_deadline = None;
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            if !matches!(self.state, SctpState::Established | SctpState::Done) {
                self.state = SctpState::Failed;
            }
            return;
        }
        match self.state {
            SctpState::CookieWait => {
                self.push_init();
                self.arm(now);
            }
            SctpState::CookieEchoed => {
                self.push_cookie_echo();
                self.arm(now);
            }
            SctpState::Established if self.unacked > 0 => {
                // Data retransmission is not needed for the connectivity
                // probe (loss-free testbed); treat persistent loss as
                // failure so a silently dropping NAT is detected.
                self.state = SctpState::Failed;
            }
            _ => {}
        }
    }

    fn push_init(&mut self) {
        self.outbox.push(SctpRepr {
            src_port: self.local_port,
            dst_port: self.remote_port,
            verification_tag: 0, // INIT always carries vtag 0
            chunks: vec![Chunk::Init {
                init_tag: self.my_vtag,
                a_rwnd: 65_536,
                outbound_streams: 1,
                inbound_streams: 1,
                initial_tsn: self.my_tsn,
            }],
        });
    }

    fn push_cookie_echo(&mut self) {
        self.outbox.push(SctpRepr {
            src_port: self.local_port,
            dst_port: self.remote_port,
            verification_tag: self.peer_vtag,
            chunks: vec![Chunk::CookieEcho { cookie: self.cookie.clone() }],
        });
    }

    /// Queues application data, transmitting immediately when established.
    pub fn send(&mut self, now: Instant, data: Vec<u8>) {
        self.tx_queue.push(data);
        if self.state == SctpState::Established {
            self.flush_data(now);
        }
    }

    /// Initiates shutdown.
    pub fn shutdown(&mut self, now: Instant) {
        if self.state == SctpState::Established {
            self.state = SctpState::ShutdownSent;
            self.outbox.push(SctpRepr {
                src_port: self.local_port,
                dst_port: self.remote_port,
                verification_tag: self.peer_vtag,
                chunks: vec![Chunk::Shutdown { cum_tsn: self.peer_cum_tsn }],
            });
            self.retries = 0;
            self.arm(now);
        }
    }

    /// Processes a packet addressed to this association.
    pub fn process(&mut self, now: Instant, packet: &SctpRepr) {
        // Verification-tag check: packets for us must carry my_vtag (except
        // nothing the client receives legitimately carries 0 here).
        if packet.verification_tag != self.my_vtag {
            return;
        }
        for chunk in &packet.chunks {
            match chunk {
                Chunk::InitAck { init_tag, initial_tsn, cookie, .. }
                    if self.state == SctpState::CookieWait =>
                {
                    self.peer_vtag = *init_tag;
                    self.peer_cum_tsn = initial_tsn.wrapping_sub(1);
                    self.cookie = cookie.clone();
                    self.state = SctpState::CookieEchoed;
                    self.retries = 0;
                    self.push_cookie_echo();
                    self.arm(now);
                }
                Chunk::CookieAck if self.state == SctpState::CookieEchoed => {
                    self.state = SctpState::Established;
                    self.rtx_deadline = None;
                    self.retries = 0;
                    self.flush_data(now);
                }
                Chunk::Data { tsn, data, .. } => {
                    if *tsn == self.peer_cum_tsn.wrapping_add(1) {
                        self.peer_cum_tsn = *tsn;
                        self.received.push(data.clone());
                    }
                    self.outbox.push(SctpRepr {
                        src_port: self.local_port,
                        dst_port: self.remote_port,
                        verification_tag: self.peer_vtag,
                        chunks: vec![Chunk::Sack { cum_tsn: self.peer_cum_tsn, a_rwnd: 65_536 }],
                    });
                }
                Chunk::Sack { cum_tsn, .. }
                    if self.unacked > 0 && *cum_tsn == self.my_tsn.wrapping_sub(1) =>
                {
                    self.unacked = 0;
                    self.rtx_deadline = None;
                }
                Chunk::ShutdownAck if self.state == SctpState::ShutdownSent => {
                    self.state = SctpState::Done;
                    self.rtx_deadline = None;
                    self.outbox.push(SctpRepr {
                        src_port: self.local_port,
                        dst_port: self.remote_port,
                        verification_tag: self.peer_vtag,
                        chunks: vec![Chunk::ShutdownComplete],
                    });
                }
                Chunk::Abort => {
                    self.state = SctpState::Failed;
                    self.rtx_deadline = None;
                }
                _ => {}
            }
        }
        if self.state == SctpState::Established {
            self.flush_data(now);
        }
    }

    fn flush_data(&mut self, now: Instant) {
        if self.unacked > 0 {
            return;
        }
        if let Some(data) =
            if self.tx_queue.is_empty() { None } else { Some(self.tx_queue.remove(0)) }
        {
            self.outbox.push(SctpRepr {
                src_port: self.local_port,
                dst_port: self.remote_port,
                verification_tag: self.peer_vtag,
                chunks: vec![Chunk::Data {
                    tsn: self.my_tsn,
                    stream_id: 0,
                    stream_seq: 0,
                    ppid: 0,
                    data,
                }],
            });
            self.my_tsn = self.my_tsn.wrapping_add(1);
            self.unacked = 1;
            self.retries = 0;
            self.arm(now);
        }
    }

    /// Drains packets ready for transmission.
    pub fn dispatch(&mut self) -> Vec<SctpRepr> {
        std::mem::take(&mut self.outbox)
    }
}

/// Server-side association bookkeeping kept by a listening host.
#[derive(Debug)]
pub struct SctpAssociation {
    /// Peer's verification tag (goes into packets we send).
    pub peer_vtag: u32,
    /// Our verification tag (peer puts it in packets to us).
    pub my_vtag: u32,
    /// Our next TSN.
    pub my_tsn: u32,
    /// Highest in-order TSN received.
    pub peer_cum_tsn: u32,
    /// Data received.
    pub received: Vec<Vec<u8>>,
    /// Echo received data back to the sender.
    pub echo: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-test server implementing the stateless side.
    fn server_react(
        pkt: &SctpRepr,
        server_vtag: u32,
        assoc: &mut Option<SctpAssociation>,
    ) -> Vec<SctpRepr> {
        let mut out = Vec::new();
        for chunk in &pkt.chunks {
            match chunk {
                Chunk::Init { init_tag, initial_tsn, .. } => {
                    out.push(SctpRepr {
                        src_port: pkt.dst_port,
                        dst_port: pkt.src_port,
                        verification_tag: *init_tag,
                        chunks: vec![Chunk::InitAck {
                            init_tag: server_vtag,
                            a_rwnd: 65_536,
                            outbound_streams: 1,
                            inbound_streams: 1,
                            initial_tsn: 500,
                            cookie: [init_tag.to_be_bytes(), initial_tsn.to_be_bytes()].concat(),
                        }],
                    });
                }
                Chunk::CookieEcho { cookie } => {
                    let peer_vtag = u32::from_be_bytes(cookie[0..4].try_into().unwrap());
                    *assoc = Some(SctpAssociation {
                        peer_vtag,
                        my_vtag: server_vtag,
                        my_tsn: 500,
                        peer_cum_tsn: u32::from_be_bytes(cookie[4..8].try_into().unwrap())
                            .wrapping_sub(1),
                        received: Vec::new(),
                        echo: true,
                    });
                    out.push(SctpRepr {
                        src_port: pkt.dst_port,
                        dst_port: pkt.src_port,
                        verification_tag: peer_vtag,
                        chunks: vec![Chunk::CookieAck],
                    });
                }
                Chunk::Data { tsn, data, .. } => {
                    let a = assoc.as_mut().unwrap();
                    if *tsn == a.peer_cum_tsn.wrapping_add(1) {
                        a.peer_cum_tsn = *tsn;
                        a.received.push(data.clone());
                    }
                    out.push(SctpRepr {
                        src_port: pkt.dst_port,
                        dst_port: pkt.src_port,
                        verification_tag: a.peer_vtag,
                        chunks: vec![Chunk::Sack { cum_tsn: a.peer_cum_tsn, a_rwnd: 65_536 }],
                    });
                }
                Chunk::Shutdown { .. } => {
                    let a = assoc.as_ref().unwrap();
                    out.push(SctpRepr {
                        src_port: pkt.dst_port,
                        dst_port: pkt.src_port,
                        verification_tag: a.peer_vtag,
                        chunks: vec![Chunk::ShutdownAck],
                    });
                }
                _ => {}
            }
        }
        out
    }

    #[test]
    fn full_association_data_and_shutdown() {
        let now = Instant::ZERO;
        let mut client = SctpEndpoint::client(5000, 7000, 0xAAAA, 100);
        let mut assoc = None;
        client.start(now);
        client.send(now, b"hello sctp".to_vec());
        // Pump packets both ways until quiescent.
        for _ in 0..10 {
            let out = client.dispatch();
            if out.is_empty() {
                break;
            }
            for pkt in out {
                for reply in server_react(&pkt, 0xBBBB, &mut assoc) {
                    client.process(now, &reply);
                }
            }
        }
        assert_eq!(client.state(), SctpState::Established);
        let a = assoc.as_ref().unwrap();
        assert_eq!(a.received, vec![b"hello sctp".to_vec()]);
        // Shutdown.
        client.shutdown(now);
        for pkt in client.dispatch() {
            for reply in server_react(&pkt, 0xBBBB, &mut assoc) {
                client.process(now, &reply);
            }
        }
        assert_eq!(client.state(), SctpState::Done);
    }

    #[test]
    fn init_retransmits_then_fails_when_blackholed() {
        let mut client = SctpEndpoint::client(5000, 7000, 1, 1);
        let mut now = Instant::ZERO;
        client.start(now);
        let mut inits = client.dispatch().len();
        for _ in 0..=MAX_RETRIES {
            now = client.poll_at().unwrap_or(now + RTX_INTERVAL);
            client.on_timer(now);
            inits += client.dispatch().len();
        }
        assert_eq!(client.state(), SctpState::Failed);
        assert_eq!(inits as u32, 1 + MAX_RETRIES);
    }

    #[test]
    fn wrong_vtag_packets_ignored() {
        let now = Instant::ZERO;
        let mut client = SctpEndpoint::client(5000, 7000, 0xAAAA, 100);
        client.start(now);
        client.dispatch();
        let bogus = SctpRepr {
            src_port: 7000,
            dst_port: 5000,
            verification_tag: 0xDEAD, // not our vtag
            chunks: vec![Chunk::Abort],
        };
        client.process(now, &bogus);
        assert_eq!(client.state(), SctpState::CookieWait);
    }
}
