//! Differential oracle for static dispatch: the same topology, seed, and
//! workload must produce a bit-identical event stream whether nodes are
//! dispatched statically (`NodeKind` match) or dynamically (every node
//! rewrapped as `NodeKind::Custom(Box<dyn Node>)`, the pre-enum engine
//! configuration). "Bit-identical" here is checked at every observable
//! layer: aggregate simulator statistics, per-link transmit counters, the
//! raw bytes and timestamps of every frame captured on the WAN link, and
//! the application payloads received at the sockets.

use std::net::SocketAddrV4;

use hgw_core::{Dir, Duration, SimStats};
use hgw_gateway::GatewayPolicy;
use hgw_stack::host::{Host, ListenerApp};
use hgw_testbed::{HostId, Testbed};

/// A household testbed (3 LAN hosts through the learning switch) running a
/// mixed workload: UDP echo bursts from every host, a TCP echo transfer
/// through the NAT, and a DNS lookup via the gateway proxy.
/// (stats, timer trace, frame trace, echoed TCP bytes) — the
/// deterministic artifacts both dispatch modes must reproduce exactly.
type DriveArtifacts = (SimStats, Vec<(u64, u64)>, Vec<(u64, Vec<u8>)>, Vec<u8>);

fn drive(boxed_oracle: bool) -> DriveArtifacts {
    let mut tb = Testbed::builder("oracle", GatewayPolicy::well_behaved())
        .campaign_slot(3, 42)
        .hosts(3)
        .boxed_oracle(boxed_oracle)
        .build();
    let (lan_link, wan_link) = (tb.lan_link, tb.wan_link);
    tb.sim.enable_trace(wan_link, Dir::AtoB);
    tb.sim.enable_trace(wan_link, Dir::BtoA);

    let server_addr = tb.server_addr;
    tb.with_host(HostId::Server, |h, _| {
        let s = h.udp_bind(7);
        h.udp_set_echo(s, true);
        h.tcp_listen(5001, ListenerApp::Echo);
    });

    // UDP bursts from every LAN host, staggered by run_for so traffic
    // interleaves on the shared switch trunk.
    let udp_dst = SocketAddrV4::new(server_addr, 7);
    for i in 0..3usize {
        tb.with_host(HostId::Lan(i), move |h, ctx| {
            let s = h.udp_bind(40_000 + i as u16);
            for k in 0..8u8 {
                h.udp_send(ctx, s, udp_dst, &[i as u8, k, 0x55, 0xAA]);
            }
        });
        tb.run_for(Duration::from_millis(5));
    }

    // A TCP transfer from the first host, echoed back by the server. The
    // send is pumped in slices as the handshake completes and window opens.
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let conn = tb.with_host(HostId::Client, move |h, ctx| {
        h.tcp_connect(ctx, SocketAddrV4::new(server_addr, 5001))
    });
    let mut offset = 0;
    let mut echoed = Vec::new();
    for _ in 0..200 {
        let slice = payload[offset..].to_vec();
        offset += tb.with_host(HostId::Client, move |h, ctx| h.tcp_send(ctx, conn, &slice));
        tb.run_for(Duration::from_millis(20));
        echoed.extend(tb.with_host(HostId::Client, move |h, _| h.tcp_recv(conn, usize::MAX)));
        if echoed.len() == payload.len() {
            break;
        }
    }
    assert_eq!(echoed, payload, "TCP echo must round-trip the payload");

    let stats = tb.sim.stats();
    let link_stats: Vec<(u64, u64)> = [lan_link, wan_link]
        .iter()
        .flat_map(|&l| {
            [Dir::AtoB, Dir::BtoA].map(|d| {
                let s = tb.sim.link(l).stats(d);
                (s.tx_frames, s.tx_bytes)
            })
        })
        .collect();
    let mut wire: Vec<(u64, Vec<u8>)> = Vec::new();
    for dir in [Dir::AtoB, Dir::BtoA] {
        wire.extend(tb.sim.take_trace(wan_link, dir).into_iter().map(|(t, f)| (t.as_nanos(), f)));
    }
    (stats, link_stats, wire, echoed)
}

#[test]
fn static_and_boxed_dispatch_are_bit_identical() {
    let static_run = drive(false);
    let boxed_run = drive(true);
    assert_eq!(static_run.0, boxed_run.0, "simulator statistics diverged");
    assert_eq!(static_run.1, boxed_run.1, "link transmit counters diverged");
    assert_eq!(static_run.2.len(), boxed_run.2.len(), "WAN trace lengths diverged");
    for (i, (a, b)) in static_run.2.iter().zip(&boxed_run.2).enumerate() {
        assert_eq!(a, b, "WAN frame {i} diverged (timestamp or bytes)");
    }
    assert_eq!(static_run.3, boxed_run.3, "application payloads diverged");
    assert!(static_run.0.events > 0 && !static_run.2.is_empty(), "workload actually ran");
}

#[test]
fn typed_access_works_under_both_representations() {
    for boxed in [false, true] {
        let tb = Testbed::builder("acc", GatewayPolicy::well_behaved())
            .campaign_slot(0, 7)
            .boxed_oracle(boxed)
            .build();
        // node_ref downcasts through NodeKind::as_any in both modes.
        let name = &tb.sim.node_ref::<Host>(tb.client).name;
        assert_eq!(name, "test-client", "boxed={boxed}");
        assert!(tb.gateway_wan_addr().is_private(), "boxed={boxed}");
    }
}
