//! End-to-end traffic through a simulated gateway: the full Figure-1 path.

use std::net::SocketAddrV4;

use hgw_core::Duration;
use hgw_gateway::{DnsTcpMode, GatewayPolicy, UnknownProtoPolicy};
use hgw_stack::host::ListenerApp;
use hgw_stack::sctp::SctpState;
use hgw_stack::tcp::TcpState;
use hgw_testbed::{HostId, Testbed};
use hgw_wire::dns::DnsMessage;

fn testbed() -> Testbed {
    Testbed::new("test", GatewayPolicy::well_behaved(), 1, 0xBEEF)
}

#[test]
fn bring_up_assigns_addresses() {
    let tb = testbed();
    assert_eq!(tb.client_addr().octets()[..3], [192, 168, 1]);
    assert_eq!(tb.gateway_wan_addr().octets()[..3], [10, 0, 1]);
}

#[test]
fn udp_through_nat_translates_and_returns() {
    let mut tb = testbed();
    let server_addr = tb.server_addr;
    let srv_sock = tb.with_host(HostId::Server, |h, _| {
        let s = h.udp_bind(7000);
        h.udp_set_echo(s, true);
        s
    });
    let cli_sock = tb.with_host(HostId::Client, |h, ctx| {
        let s = h.udp_bind_ephemeral();
        h.udp_send(ctx, s, SocketAddrV4::new(server_addr, 7000), b"through-the-nat");
        s
    });
    tb.run_for(Duration::from_millis(50));
    // The server saw the gateway's WAN address, not the client's.
    let wan = tb.gateway_wan_addr();
    let client_addr = tb.client_addr();
    let (from, data) =
        tb.with_host(HostId::Server, |h, _| h.udp_recv(srv_sock)).expect("server rx");
    assert_eq!(*from.ip(), wan);
    assert_ne!(*from.ip(), client_addr);
    assert_eq!(data, b"through-the-nat");
    // The echo came back through the binding.
    let (efrom, edata) =
        tb.with_host(HostId::Client, |h, _| h.udp_recv(cli_sock)).expect("client rx");
    assert_eq!(efrom, SocketAddrV4::new(server_addr, 7000));
    assert_eq!(edata, b"through-the-nat");
}

#[test]
fn port_preservation_is_visible_to_server() {
    let mut tb = testbed();
    let server_addr = tb.server_addr;
    let srv_sock = tb.with_host(HostId::Server, |h, _| h.udp_bind(7001));
    tb.with_host(HostId::Client, |h, ctx| {
        let s = h.udp_bind(45_678);
        h.udp_send(ctx, s, SocketAddrV4::new(server_addr, 7001), b"x");
    });
    tb.run_for(Duration::from_millis(50));
    let (from, _) = tb.with_host(HostId::Server, |h, _| h.udp_recv(srv_sock)).expect("rx");
    assert_eq!(from.port(), 45_678, "well_behaved preserves the source port");
}

#[test]
fn tcp_through_nat_full_transfer() {
    let mut tb = testbed();
    let server_addr = tb.server_addr;
    tb.with_host(HostId::Server, |h, _| h.tcp_listen(80, ListenerApp::Echo));
    let conn = tb
        .with_host(HostId::Client, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(server_addr, 80)));
    tb.run_for(Duration::from_millis(100));
    assert_eq!(tb.with_host(HostId::Client, |h, _| h.tcp(conn).state()), TcpState::Established);
    tb.with_host(HostId::Client, |h, ctx| {
        h.tcp_send(ctx, conn, &vec![0x5A; 100_000]);
    });
    // Drain as we go: the receive buffer (64 KB) is smaller than the
    // transfer, so the reader must keep up or the window closes.
    let mut echoed = Vec::new();
    for _ in 0..100 {
        tb.run_for(Duration::from_millis(50));
        let chunk = tb.with_host(HostId::Client, |h, ctx| {
            let data = h.tcp_recv(conn, 200_000);
            h.kick(ctx); // flush the window update
            data
        });
        echoed.extend_from_slice(&chunk);
        if echoed.len() >= 100_000 {
            break;
        }
    }
    assert_eq!(echoed.len(), 100_000);
    assert!(echoed.iter().all(|&b| b == 0x5A));
}

#[test]
fn unsolicited_inbound_is_filtered() {
    let mut tb = testbed();
    let wan = tb.gateway_wan_addr();
    // The server sends UDP to the gateway's WAN address with no binding.
    tb.with_host(HostId::Server, |h, ctx| {
        let s = h.udp_bind_ephemeral();
        h.udp_send(ctx, s, SocketAddrV4::new(wan, 33_333), b"knock knock");
    });
    tb.run_for(Duration::from_millis(50));
    // Nothing must reach the client.
    let got = tb.with_host(HostId::Client, |h, _| {
        let s = h.udp_bind(33_333);
        h.udp_recv(s)
    });
    assert!(got.is_none());
}

#[test]
fn ping_through_nat() {
    let mut tb = testbed();
    let server_addr = tb.server_addr;
    tb.with_host(HostId::Client, |h, ctx| h.ping(ctx, server_addr, 0x1234, 1));
    tb.run_for(Duration::from_millis(50));
    let replies = tb.with_host(HostId::Client, |h, _| h.ping_take_replies());
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].1, server_addr);
    assert_eq!(replies[0].2, 0x1234, "ident translated back");
}

#[test]
fn sctp_works_through_ip_rewrite_fallback() {
    let mut tb = testbed(); // well_behaved: IpRewrite { allow_inbound: true }
    let server_addr = tb.server_addr;
    tb.with_host(HostId::Server, |h, _| h.sctp_listen(9899));
    let ep = tb.with_host(HostId::Client, |h, ctx| {
        h.sctp_connect(ctx, SocketAddrV4::new(server_addr, 9899))
    });
    tb.run_for(Duration::from_secs(1));
    assert_eq!(tb.with_host(HostId::Client, |h, _| h.sctp(ep).state()), SctpState::Established);
    tb.with_host(HostId::Client, |h, ctx| h.sctp_send(ctx, ep, b"sctp through nat".to_vec()));
    tb.run_for(Duration::from_secs(1));
    let rx = tb.with_host(HostId::Client, |h, _| h.sctp(ep).received.clone());
    assert_eq!(rx, vec![b"sctp through nat".to_vec()]);
}

#[test]
fn sctp_fails_when_unknown_protocols_are_dropped() {
    let mut policy = GatewayPolicy::well_behaved();
    policy.unknown_proto = UnknownProtoPolicy::Drop;
    let mut tb = Testbed::new("droppy", policy, 2, 1);
    let server_addr = tb.server_addr;
    tb.with_host(HostId::Server, |h, _| h.sctp_listen(9899));
    let ep = tb.with_host(HostId::Client, |h, ctx| {
        h.sctp_connect(ctx, SocketAddrV4::new(server_addr, 9899))
    });
    tb.run_for(Duration::from_secs(20));
    assert_eq!(tb.with_host(HostId::Client, |h, _| h.sctp(ep).state()), SctpState::Failed);
}

#[test]
fn dccp_fails_even_through_ip_rewrite() {
    // The emergent result: IP-only rewriting breaks DCCP's pseudo-header
    // checksum, so the server never sees a valid REQUEST.
    let mut tb = testbed();
    let server_addr = tb.server_addr;
    tb.with_host(HostId::Server, |h, _| h.dccp_listen(5002));
    let ep = tb.with_host(HostId::Client, |h, ctx| {
        h.dccp_connect(ctx, SocketAddrV4::new(server_addr, 5002), 1)
    });
    tb.run_for(Duration::from_secs(20));
    assert_eq!(
        tb.with_host(HostId::Client, |h, _| h.dccp(ep).state()),
        hgw_stack::dccp::DccpState::Failed
    );
}

#[test]
fn dns_proxy_over_udp_resolves() {
    let mut tb = testbed();
    let proxy = tb.gateway_lan_addr();
    let sock = tb.with_host(HostId::Client, |h, ctx| {
        let s = h.udp_bind_ephemeral();
        let q = DnsMessage::query_a(0xABCD, "server.hiit.fi");
        h.udp_send(ctx, s, SocketAddrV4::new(proxy, 53), &q.emit());
        s
    });
    tb.run_for(Duration::from_millis(200));
    let (_, resp) = tb.with_host(HostId::Client, |h, _| h.udp_recv(sock)).expect("proxied answer");
    let msg = DnsMessage::parse(&resp).unwrap();
    assert_eq!(msg.id, 0xABCD);
    assert_eq!(msg.answers.len(), 1);
}

#[test]
fn dns_proxy_tcp_refused_by_default() {
    let mut tb = testbed(); // well_behaved: DnsTcpMode::Refuse
    let proxy = tb.gateway_lan_addr();
    let conn =
        tb.with_host(HostId::Client, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(proxy, 53)));
    tb.run_for(Duration::from_millis(100));
    let state = tb.with_host(HostId::Client, |h, _| h.tcp(conn).state());
    assert_eq!(state, TcpState::Closed, "SYN to the proxy should be refused");
}

#[test]
fn dns_proxy_tcp_answers_when_enabled() {
    for mode in [DnsTcpMode::AnswerViaTcp, DnsTcpMode::AnswerViaUdp] {
        let mut policy = GatewayPolicy::well_behaved();
        policy.dns_proxy.tcp = mode;
        let mut tb = Testbed::new("dnsy", policy, 3, 7);
        let proxy = tb.gateway_lan_addr();
        let conn =
            tb.with_host(HostId::Client, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(proxy, 53)));
        tb.run_for(Duration::from_millis(100));
        assert_eq!(tb.with_host(HostId::Client, |h, _| h.tcp(conn).state()), TcpState::Established);
        tb.with_host(HostId::Client, |h, ctx| {
            let q = DnsMessage::query_a(0x9999, "www.hiit.fi").emit_tcp();
            h.tcp_send(ctx, conn, &q);
        });
        tb.run_for(Duration::from_secs(1));
        let data = tb.with_host(HostId::Client, |h, _| h.tcp_recv(conn, 4096));
        let (msg, _) = DnsMessage::parse_tcp(&data)
            .unwrap_or_else(|e| panic!("no framed answer for {mode:?}: {e} ({data:?})"));
        assert_eq!(msg.id, 0x9999);
        assert_eq!(msg.answers.len(), 1, "mode {mode:?}");
    }
}

#[test]
fn dns_tcp_accept_no_answer_black_holes() {
    let mut policy = GatewayPolicy::well_behaved();
    policy.dns_proxy.tcp = DnsTcpMode::AcceptNoAnswer;
    let mut tb = Testbed::new("hole", policy, 4, 9);
    let proxy = tb.gateway_lan_addr();
    let conn =
        tb.with_host(HostId::Client, |h, ctx| h.tcp_connect(ctx, SocketAddrV4::new(proxy, 53)));
    tb.run_for(Duration::from_millis(100));
    assert_eq!(tb.with_host(HostId::Client, |h, _| h.tcp(conn).state()), TcpState::Established);
    tb.with_host(HostId::Client, |h, ctx| {
        let q = DnsMessage::query_a(1, "server.hiit.fi").emit_tcp();
        h.tcp_send(ctx, conn, &q);
    });
    tb.run_for(Duration::from_secs(2));
    let data = tb.with_host(HostId::Client, |h, _| h.tcp_recv(conn, 4096));
    assert!(data.is_empty(), "black-hole proxy must not answer");
}

#[test]
fn deterministic_across_identical_seeds() {
    let run = || {
        let mut tb = Testbed::new("det", GatewayPolicy::well_behaved(), 5, 1234);
        let server_addr = tb.server_addr;
        let sock = tb.with_host(HostId::Client, |h, ctx| {
            let s = h.udp_bind_ephemeral();
            h.udp_send(ctx, s, SocketAddrV4::new(server_addr, 9), b"det");
            s
        });
        tb.run_for(Duration::from_secs(1));
        let events = tb.with_host(HostId::Client, |h, _| h.icmp_take_events());
        let _ = sock;
        (tb.client_addr(), tb.gateway_wan_addr(), events.len())
    };
    assert_eq!(run(), run());
}
