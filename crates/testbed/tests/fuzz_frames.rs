//! Robustness: arbitrary byte blobs thrown at the gateway's LAN and WAN
//! ports, and at the hosts, must never panic or wedge the simulation —
//! the property every parser entry point in the datapath must uphold.

use proptest::prelude::*;

use hgw_core::{Duration, PortId};
use hgw_gateway::GatewayPolicy;
use hgw_stack::host::Host;
use hgw_testbed::{HostId, Testbed};
use hgw_wire::ip::{Ipv4Repr, Protocol};

fn arb_frames() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..120), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw garbage injected from both hosts: the gateway and the peer host
    /// must survive and keep serving real traffic afterwards.
    #[test]
    fn garbage_frames_do_not_break_the_testbed(frames in arb_frames()) {
        let mut tb = Testbed::new("fuzz", GatewayPolicy::well_behaved(), 1, 0xF022);
        for (i, frame) in frames.iter().enumerate() {
            let frame = frame.clone();
            if i % 2 == 0 {
                tb.with_node::<Host, _>(tb.client, |_, ctx| {
                    ctx.send_frame(PortId(0), frame);
                });
            } else {
                tb.with_node::<Host, _>(tb.server, |_, ctx| {
                    ctx.send_frame(PortId(0), frame);
                });
            }
            tb.run_for(Duration::from_millis(5));
        }
        tb.run_for(Duration::from_millis(100));
        // The path still works end to end.
        let server_addr = tb.server_addr;
        let srv = tb.with_host(HostId::Server, |h, _| {
            let s = h.udp_bind(9_999);
            h.udp_set_echo(s, true);
            s
        });
        let cli = tb.with_host(HostId::Client, |h, ctx| {
            let s = h.udp_bind_ephemeral();
            h.udp_send(ctx, s, std::net::SocketAddrV4::new(server_addr, 9_999), b"alive?");
            s
        });
        tb.run_for(Duration::from_millis(100));
        prop_assert!(
            tb.with_host(HostId::Client, |h, _| h.udp_recv(cli)).is_some(),
            "testbed wedged after garbage input"
        );
        let _ = srv;
    }

    /// Valid IPv4 headers with garbage payloads for every protocol number:
    /// the gateway's per-protocol parsers must reject gracefully.
    #[test]
    fn valid_ip_garbage_l4_does_not_break_the_gateway(
        proto in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut tb = Testbed::new("fuzz-l4", GatewayPolicy::well_behaved(), 2, 0xF122);
        let server_addr = tb.server_addr;
        let client_addr = tb.client_addr();
        let pkt = Ipv4Repr::new(client_addr, server_addr, Protocol::from(proto))
            .emit_with_payload(&payload);
        tb.with_host(HostId::Client, |h, ctx| h.raw_send(ctx, pkt));
        tb.run_for(Duration::from_millis(50));
        // And from the WAN side, aimed at the gateway's external address.
        let wan = tb.gateway_wan_addr();
        let pkt = Ipv4Repr::new(server_addr, wan, Protocol::from(proto))
            .emit_with_payload(&payload);
        tb.with_host(HostId::Server, |h, ctx| h.raw_send(ctx, pkt));
        tb.run_for(Duration::from_millis(50));
        // Gateway still forwards.
        let srv = tb.with_host(HostId::Server, |h, _| {
            let s = h.udp_bind(9_998);
            h.udp_set_echo(s, true);
            s
        });
        let cli = tb.with_host(HostId::Client, |h, ctx| {
            let s = h.udp_bind_ephemeral();
            h.udp_send(ctx, s, std::net::SocketAddrV4::new(server_addr, 9_998), b"ok?");
            s
        });
        tb.run_for(Duration::from_millis(100));
        prop_assert!(tb.with_host(HostId::Client, |h, _| h.udp_recv(cli)).is_some());
        let _ = srv;
    }
}
