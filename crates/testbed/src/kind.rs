//! The closed node universe of the testbed: [`NodeKind`].
//!
//! Every topology the testbed builds is made of three concrete node types —
//! [`Host`], [`Gateway`], [`Switch`] — plus the occasional ad-hoc driver
//! node in tests. `NodeKind` enumerates exactly that universe, so the
//! simulator ([`SimCore<NodeKind>`](hgw_core::SimCore)) dispatches every
//! event with a match over four variants instead of a vtable call: the
//! compiler sees the concrete `handle_frame`/`handle_timer` bodies and can
//! inline them into the event loop.
//!
//! The [`Custom`](NodeKind::Custom) variant is the escape hatch for node
//! types outside the closed set (scripted attackers, protocol-violating
//! probes, test taps): anything implementing [`Node`] rides along boxed,
//! paying dynamic dispatch only for itself. It is also how the
//! boxed-oracle mode works: [`NodeKind::into_boxed`] rewraps a typed
//! variant as `Custom`, turning the whole topology back into the
//! dynamic-dispatch configuration so differential tests can prove the two
//! produce bit-identical event streams.

use core::any::Any;

use hgw_core::{Node, NodeCtx, PortId, SimNode, TimerToken};
use hgw_gateway::Gateway;
use hgw_stack::host::Host;
use hgw_stack::switch::Switch;

/// A testbed node, dispatched statically by match (see the module docs).
// Inline (unboxed) variants are the point: the node slab stores devices
// contiguously with no per-node heap hop, trading slab width for locality.
#[allow(clippy::large_enum_variant)]
pub enum NodeKind {
    /// An end host (LAN client or WAN server).
    Host(Host),
    /// A home gateway under test.
    Gateway(Gateway),
    /// A learning LAN switch.
    Switch(Switch),
    /// Any other [`Node`] — ad-hoc drivers, attackers, taps — boxed. Also
    /// the boxed-oracle representation of the three typed variants.
    Custom(Box<dyn Node>),
}

impl NodeKind {
    /// Rewraps a typed variant as [`NodeKind::Custom`], forcing dynamic
    /// dispatch for this node. The node's behavior is unchanged — only the
    /// dispatch mechanism differs — which is exactly what the differential
    /// oracle tests rely on.
    pub fn into_boxed(self) -> NodeKind {
        match self {
            NodeKind::Host(h) => NodeKind::Custom(Box::new(h)),
            NodeKind::Gateway(g) => NodeKind::Custom(Box::new(g)),
            NodeKind::Switch(s) => NodeKind::Custom(Box::new(s)),
            custom @ NodeKind::Custom(_) => custom,
        }
    }
}

impl SimNode for NodeKind {
    fn start(&mut self, ctx: &mut NodeCtx) {
        match self {
            NodeKind::Host(h) => h.start(ctx),
            NodeKind::Gateway(g) => g.start(ctx),
            NodeKind::Switch(s) => s.start(ctx),
            NodeKind::Custom(b) => (**b).start(ctx),
        }
    }

    fn handle_frame(&mut self, ctx: &mut NodeCtx, port: PortId, frame: &mut Vec<u8>) {
        match self {
            NodeKind::Host(h) => h.handle_frame(ctx, port, frame),
            NodeKind::Gateway(g) => g.handle_frame(ctx, port, frame),
            NodeKind::Switch(s) => s.handle_frame(ctx, port, frame),
            NodeKind::Custom(b) => (**b).handle_frame(ctx, port, frame),
        }
    }

    fn handle_timer(&mut self, ctx: &mut NodeCtx, token: TimerToken) {
        match self {
            NodeKind::Host(h) => h.handle_timer(ctx, token),
            NodeKind::Gateway(g) => g.handle_timer(ctx, token),
            NodeKind::Switch(s) => s.handle_timer(ctx, token),
            NodeKind::Custom(b) => (**b).handle_timer(ctx, token),
        }
    }

    /// Exposes the *inner* concrete node, so `node_ref::<Host>` and
    /// `with_node::<Gateway, _>` behave identically whether the node is a
    /// typed variant or boxed in `Custom`.
    fn as_any(&self) -> &dyn Any {
        match self {
            NodeKind::Host(h) => h,
            NodeKind::Gateway(g) => g,
            NodeKind::Switch(s) => s,
            NodeKind::Custom(b) => Node::as_any(&**b),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        match self {
            NodeKind::Host(h) => h,
            NodeKind::Gateway(g) => g,
            NodeKind::Switch(s) => s,
            NodeKind::Custom(b) => Node::as_any_mut(&mut **b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_any_reaches_the_inner_node_in_both_representations() {
        let typed = NodeKind::Host(Host::new("h"));
        assert!(typed.as_any().downcast_ref::<Host>().is_some());
        let boxed = typed.into_boxed();
        assert!(matches!(boxed, NodeKind::Custom(_)));
        assert!(boxed.as_any().downcast_ref::<Host>().is_some());
    }

    #[test]
    fn into_boxed_is_idempotent_on_custom() {
        let custom = NodeKind::Custom(Box::new(Switch::new("s", 2)));
        let again = custom.into_boxed();
        assert!(again.as_any().downcast_ref::<Switch>().is_some());
    }
}
