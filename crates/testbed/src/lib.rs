//! # hgw-testbed — the experimental testbed of Figure 1, generalized
//!
//! Assembles, per device under test, the paper's topology:
//!
//! ```text
//!   test client ──(LAN, 100 Mb/s)── gateway ──(WAN, 100 Mb/s)── test server
//!        │                             │                            │
//!   DHCP client                 NAT + DHCP both sides        DHCP server,
//!                                + DNS proxy                 DNS (hiit.fi),
//!                                                            echo services
//! ```
//!
//! …and, beyond the paper, *household* variants of it: M DHCP-configured
//! LAN hosts behind one gateway, fanned in through a learning
//! [`Switch`](hgw_stack::switch::Switch):
//!
//! ```text
//!   host 0 ──┐
//!   host 1 ──┼──(LAN switch)── gateway ──(WAN)── test server
//!   host M-1 ┘
//! ```
//!
//! All presets are thin layers over [`TopologyBuilder`], the declarative
//! node-graph API (named nodes, switches, per-node interfaces, DHCP
//! bring-up). [`Testbed`] is the 1-host preset — bit-identical to the seed
//! repo's hand-rolled triple — and [`DualNatTestbed`] is the nested-NAT
//! preset. Hosts are addressed by [`HostId`] (`with_host`), arbitrary
//! nodes by [`NodeId`] (`with_node`).
//!
//! Each gateway gets its own VLAN pair in the paper; here each device gets
//! its own [`Testbed`] (an isolated simulator), which has the same
//! observable semantics and lets the fleet run embarrassingly parallel.
//! The management link of Figure 1 is the experiment driver itself: probes
//! steer both hosts directly through
//! [`SimCore::with_node`](hgw_core::SimCore::with_node), out of band by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual;
pub mod kind;
pub mod topology;

pub use dual::{DualNatTestbed, Side};
pub use kind::NodeKind;
pub use topology::{HostId, LinkHandle, NodeHandle, Span, Topology, TopologyBuilder, TopologySim};

use std::net::Ipv4Addr;
use std::ops::{Deref, DerefMut};

use hgw_core::{LinkConfig, LinkId, NodeCtx, NodeId, PortId};
use hgw_gateway::{Gateway, GatewayPolicy, LAN_PORT, WAN_PORT};
use hgw_stack::dhcp::DhcpServerConfig;
use hgw_stack::dns::DnsZone;
use hgw_stack::host::Host;
use hgw_stack::iface::IfaceConfig;

/// A single device-under-test testbed: M LAN hosts (1 in the paper's
/// Figure 1), one gateway, one server. Derefs to [`Topology`] for the
/// generic surface (`sim`, `run_for`, `with_node`, `span`, …).
pub struct Testbed {
    /// The underlying topology.
    pub topo: Topology,
    /// The first LAN host — the paper's test client.
    pub client: NodeId,
    /// Test server node (WAN side).
    pub server: NodeId,
    /// The gateway under test.
    pub gateway: NodeId,
    /// All LAN hosts in index order (`hosts[0] == client`).
    pub hosts: Vec<NodeId>,
    /// The LAN uplink into the gateway (the client link in the 1-host
    /// preset, the switch–gateway trunk in household presets).
    pub lan_link: LinkId,
    /// The gateway–server link.
    pub wan_link: LinkId,
    /// The test server's address (`10.0.<index>.1`).
    pub server_addr: Ipv4Addr,
    /// Testbed slot index (selects the address plan).
    pub index: u8,
}

impl Deref for Testbed {
    type Target = Topology;
    fn deref(&self) -> &Topology {
        &self.topo
    }
}

impl DerefMut for Testbed {
    fn deref_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }
}

/// Builder for [`Testbed`] — the one documented place where slot and seed
/// derivation for fleet campaigns lives.
///
/// [`Testbed::new`] takes the slot index and simulator seed positionally;
/// the builder names them and adds [`TestbedBuilder::campaign_slot`], which
/// derives both from a fleet-level `(slot, seed)` pair exactly the way the
/// fleet runner does:
///
/// * **index** — `slot % 255 + 1`, so each device gets its own
///   `10.0.<index>.0/24` address plan, slot 0 never collides with the
///   `10.0.0.0/24` default, and mega-fleet slots beyond 254 wrap instead
///   of overflowing `u8`.
/// * **seed** — `campaign_seed ^ hash(tag)`, where `hash` is a simple
///   31-multiplier fold over the tag bytes. Deriving from the *tag* rather
///   than the slot keeps a device's randomness stable even if the fleet is
///   filtered or reordered, and decorrelates devices within one campaign.
///
/// [`TestbedBuilder::hosts`] widens the LAN side into a household: M
/// DHCP-configured hosts behind a learning switch, all NATed by the one
/// gateway under test.
///
/// ```
/// use hgw_gateway::GatewayPolicy;
/// use hgw_testbed::Testbed;
///
/// let tb = Testbed::builder("owrt", GatewayPolicy::well_behaved())
///     .campaign_slot(0, 42)
///     .build();
/// assert_eq!(tb.tag(), "owrt");
/// assert_eq!(tb.index, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TestbedBuilder {
    tag: String,
    policy: GatewayPolicy,
    index: u8,
    seed: u64,
    hosts: usize,
    boxed_oracle: bool,
}

impl TestbedBuilder {
    /// Forces every node into the boxed dynamic-dispatch representation
    /// (see [`TopologyBuilder::boxed_oracle`]); defaults to the
    /// `boxed-oracle` cargo feature. Behavior is bit-identical either way —
    /// this exists for differential oracle runs.
    pub fn boxed_oracle(mut self, enabled: bool) -> TestbedBuilder {
        self.boxed_oracle = enabled;
        self
    }
    /// Sets the testbed slot index (selects the `10.0.<index>.0/24` plan).
    pub fn index(mut self, index: u8) -> TestbedBuilder {
        self.index = index;
        self
    }

    /// Sets the simulator seed directly.
    pub fn seed(mut self, seed: u64) -> TestbedBuilder {
        self.seed = seed;
        self
    }

    /// Sets the number of LAN hosts (default 1 — the paper's Figure 1).
    ///
    /// With `n > 1` the hosts fan in through a learning LAN switch and
    /// every host runs DHCP with auto-renewal; with `n == 1` the topology
    /// (and its event sequence) is exactly the seed testbed's. Clamped
    /// range: 1–64 (the gateway's DHCP pool holds 100 addresses).
    pub fn hosts(mut self, n: usize) -> TestbedBuilder {
        assert!((1..=64).contains(&n), "TestbedBuilder::hosts: n must be in 1..=64, got {n}");
        self.hosts = n;
        self
    }

    /// Derives index and seed from a campaign-level slot and seed (see the
    /// type-level docs for the derivation rules).
    ///
    /// The index wraps modulo 255 (`slot % 255 + 1`) so mega-fleet slots
    /// beyond 254 stay inside `u8` without ever colliding with the
    /// `10.0.0.0/24` default plan at index 0. Identical to `slot + 1` for
    /// the 34-device Table 1 fleet. Testbeds are isolated simulators, so
    /// two far-apart slots sharing an address plan never interact.
    pub fn campaign_slot(self, slot: usize, campaign_seed: u64) -> TestbedBuilder {
        let tag_seed = campaign_seed ^ Self::tag_hash(&self.tag);
        self.index((slot % 255 + 1) as u8).seed(tag_seed)
    }

    /// The per-tag hash folded into campaign seeds.
    fn tag_hash(tag: &str) -> u64 {
        tag.bytes().fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
    }

    /// Builds and boots the testbed (see [`Testbed::new`] for panics).
    pub fn build(self) -> Testbed {
        Testbed::assemble(
            &self.tag,
            self.policy,
            self.index,
            self.seed,
            self.hosts,
            self.boxed_oracle,
        )
    }
}

impl Testbed {
    /// Builds and boots a 1-host testbed for one gateway model, then runs
    /// DHCP on both sides until the client is configured.
    ///
    /// # Panics
    /// Panics if bring-up does not complete — a testbed that cannot even
    /// DHCP is a bug, not a measurement.
    pub fn new(tag: &str, policy: GatewayPolicy, index: u8, seed: u64) -> Testbed {
        // Kept as the positional primitive; prefer [`Testbed::builder`]
        // for named parameters, campaign slot/seed derivation, and
        // household sizing.
        Testbed::assemble(tag, policy, index, seed, 1, cfg!(feature = "boxed-oracle"))
    }

    /// Starts a [`TestbedBuilder`] for `tag` (slot index 1, seed 0, one
    /// LAN host until overridden).
    pub fn builder(tag: &str, policy: GatewayPolicy) -> TestbedBuilder {
        TestbedBuilder {
            tag: tag.to_string(),
            policy,
            index: 1,
            seed: 0,
            hosts: 1,
            boxed_oracle: cfg!(feature = "boxed-oracle"),
        }
    }

    /// The preset over [`TopologyBuilder`]: M LAN hosts (direct link for
    /// M = 1, learning switch for M > 1), the gateway under test, and the
    /// WAN server. Node and link insertion order is part of the
    /// reproducibility contract — for M = 1 it matches the seed repo's
    /// hand-rolled testbed exactly (client, gateway, server), so per-node
    /// RNG streams and event sequences are bit-identical.
    fn assemble(
        tag: &str,
        policy: GatewayPolicy,
        index: u8,
        seed: u64,
        m: usize,
        boxed_oracle: bool,
    ) -> Testbed {
        assert!((1..=64).contains(&m), "Testbed: host count must be in 1..=64, got {m}");
        let mut b = TopologyBuilder::new(seed).boxed_oracle(boxed_oracle);
        let server_addr = Ipv4Addr::new(10, 0, index, 1);
        let ether = LinkConfig::ethernet_100m;

        // LAN hosts: everything via DHCP from the gateway. Host 0 keeps
        // the seed client's name and chaddr.
        let hosts: Vec<NodeHandle> = (0..m)
            .map(|i| {
                let name =
                    if i == 0 { "test-client".to_string() } else { format!("test-client-{i}") };
                let mut host = Host::new(&name);
                host.enable_dhcp_client(PortId(0), [0x02, 0xC1, 0x1E, 0x47, i as u8, index]);
                if m > 1 {
                    // Households run long enough in virtual time that
                    // leases can come due; the 1-host preset keeps the
                    // seed's renewal-free behavior.
                    host.dhcp_auto_renew(true);
                }
                b.host(&name, host)
            })
            .collect();
        let switch = (m > 1).then(|| b.switch("lan-switch"));
        let gateway = b.gateway("gateway", Gateway::new(tag, policy, index));

        // Test server: static address, DHCP service for the gateway's WAN
        // side, the hiit.fi DNS zone, and echo responders.
        let mut server = Host::new("test-server");
        server.add_iface(PortId(0), IfaceConfig::new(server_addr, 24));
        server.enable_dhcp_server(
            PortId(0),
            DhcpServerConfig {
                server_addr,
                pool_start: Ipv4Addr::new(10, 0, index, 50),
                pool_size: 32,
                subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
                router: Some(server_addr),
                dns_servers: vec![server_addr],
                lease_secs: 7 * 24 * 3600,
            },
        );
        server.enable_dns_server(DnsZone::testbed_default(server_addr));
        let server = b.host("test-server", server);

        let lan_link = match switch {
            None => b.link(hosts[0], PortId(0), gateway, LAN_PORT, ether()),
            Some(sw) => {
                for &h in &hosts {
                    b.attach(sw, h, PortId(0), ether());
                }
                b.attach(sw, gateway, LAN_PORT, ether())
            }
        };
        let wan_link = b.link(gateway, WAN_PORT, server, PortId(0), ether());

        let topo = b.build();
        let host_ids: Vec<NodeId> = topo.lan_hosts();
        Testbed {
            client: host_ids[0],
            server: topo.node_id("test-server"),
            gateway: topo.node_id("gateway"),
            hosts: host_ids,
            lan_link: topo.link(lan_link),
            wan_link: topo.link(wan_link),
            server_addr,
            index,
            topo,
        }
    }

    /// The device tag.
    pub fn tag(&self) -> String {
        self.topo.sim.node_ref::<Gateway>(self.gateway).tag.clone()
    }

    /// Resolves a [`HostId`] to the underlying node.
    ///
    /// # Panics
    /// Panics if `Lan(i)` is out of range for this testbed's host count.
    pub fn host_node(&self, host: HostId) -> NodeId {
        match host {
            HostId::Client => self.client,
            HostId::Lan(i) => *self
                .hosts
                .get(i)
                .unwrap_or_else(|| panic!("testbed has {} hosts, no Lan({i})", self.hosts.len())),
            HostId::Server => self.server,
        }
    }

    /// Drives the host addressed by `host` (see [`HostId`]).
    pub fn with_host<R>(
        &mut self,
        host: HostId,
        f: impl FnOnce(&mut Host, &mut NodeCtx) -> R,
    ) -> R {
        let id = self.host_node(host);
        self.topo.sim.with_node::<Host, _>(id, f)
    }

    /// Drives the node `id` as a `T` (panics if `id` is not a `T`).
    ///
    /// Also available through the [`Topology`] deref; this inherent copy
    /// lets call sites pass a testbed field as the id
    /// (`tb.with_node::<Gateway, _>(tb.gateway, f)`) without tripping the
    /// borrow checker on the deref.
    pub fn with_node<T: hgw_core::Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut NodeCtx) -> R,
    ) -> R {
        self.topo.sim.with_node::<T, _>(id, f)
    }

    /// Mutable access to a link's configuration (loss, delay, rate).
    ///
    /// Inherent for the same borrow-checker reason as [`Testbed::with_node`]:
    /// `tb.link_config_mut(tb.wan_link)` must compile.
    pub fn link_config_mut(&mut self, link: LinkId) -> &mut LinkConfig {
        self.topo.sim.link_config_mut(link)
    }

    /// The client's DHCP-assigned address.
    pub fn client_addr(&self) -> Ipv4Addr {
        self.lan_addr(0)
    }

    /// The `i`-th LAN host's DHCP-assigned address.
    pub fn lan_addr(&self, i: usize) -> Ipv4Addr {
        self.topo.sim.node_ref::<Host>(self.hosts[i]).dhcp_lease().expect("host bound").addr
    }

    /// The gateway's LAN-side address (the clients' router and DNS proxy).
    pub fn gateway_lan_addr(&self) -> Ipv4Addr {
        self.topo.sim.node_ref::<Gateway>(self.gateway).lan_addr()
    }

    /// The gateway's DHCP-acquired WAN address.
    pub fn gateway_wan_addr(&self) -> Ipv4Addr {
        self.topo.sim.node_ref::<Gateway>(self.gateway).wan_addr().expect("gateway bound")
    }
}
