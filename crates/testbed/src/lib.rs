//! # hgw-testbed — the experimental testbed of Figure 1
//!
//! Assembles, per device under test, the paper's topology:
//!
//! ```text
//!   test client ──(LAN, 100 Mb/s)── gateway ──(WAN, 100 Mb/s)── test server
//!        │                             │                            │
//!   DHCP client                 NAT + DHCP both sides        DHCP server,
//!                                + DNS proxy                 DNS (hiit.fi),
//!                                                            echo services
//! ```
//!
//! Each gateway gets its own VLAN pair in the paper; here each device gets
//! its own [`Testbed`] (an isolated simulator), which has the same
//! observable semantics and lets the fleet run embarrassingly parallel.
//! The management link of Figure 1 is the experiment driver itself: probes
//! steer both hosts directly through
//! [`Simulator::with_node`](hgw_core::Simulator::with_node), out of band by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual;

pub use dual::{DualNatTestbed, Side};

use std::net::Ipv4Addr;

use hgw_core::{Duration, Instant, LinkConfig, LinkId, NodeCtx, NodeId, PortId, Simulator, SpanId};
use hgw_gateway::{Gateway, GatewayPolicy, LAN_PORT, WAN_PORT};
use hgw_stack::dhcp::DhcpServerConfig;
use hgw_stack::dns::DnsZone;
use hgw_stack::host::Host;
use hgw_stack::iface::IfaceConfig;

/// A single device-under-test testbed: client, gateway, server.
pub struct Testbed {
    /// The simulator owning all three nodes.
    pub sim: Simulator,
    /// Test client node (behind the NAT).
    pub client: NodeId,
    /// Test server node (WAN side).
    pub server: NodeId,
    /// The gateway under test.
    pub gateway: NodeId,
    /// The client–gateway link.
    pub lan_link: LinkId,
    /// The gateway–server link.
    pub wan_link: LinkId,
    /// The test server's address (`10.0.<index>.1`).
    pub server_addr: Ipv4Addr,
    /// Testbed slot index (selects the address plan).
    pub index: u8,
}

/// How long the bring-up phase (double DHCP) is allowed to take.
const BRINGUP_LIMIT: Duration = Duration::from_secs(30);

/// Builder for [`Testbed`] — the one documented place where slot and seed
/// derivation for fleet campaigns lives.
///
/// [`Testbed::new`] takes the slot index and simulator seed positionally;
/// the builder names them and adds [`TestbedBuilder::campaign_slot`], which
/// derives both from a fleet-level `(slot, seed)` pair exactly the way the
/// fleet runner does:
///
/// * **index** — `slot % 255 + 1`, so each device gets its own
///   `10.0.<index>.0/24` address plan, slot 0 never collides with the
///   `10.0.0.0/24` default, and mega-fleet slots beyond 254 wrap instead
///   of overflowing `u8`.
/// * **seed** — `campaign_seed ^ hash(tag)`, where `hash` is a simple
///   31-multiplier fold over the tag bytes. Deriving from the *tag* rather
///   than the slot keeps a device's randomness stable even if the fleet is
///   filtered or reordered, and decorrelates devices within one campaign.
///
/// ```
/// use hgw_gateway::GatewayPolicy;
/// use hgw_testbed::Testbed;
///
/// let tb = Testbed::builder("owrt", GatewayPolicy::well_behaved())
///     .campaign_slot(0, 42)
///     .build();
/// assert_eq!(tb.tag(), "owrt");
/// assert_eq!(tb.index, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TestbedBuilder {
    tag: String,
    policy: GatewayPolicy,
    index: u8,
    seed: u64,
}

impl TestbedBuilder {
    /// Sets the testbed slot index (selects the `10.0.<index>.0/24` plan).
    pub fn index(mut self, index: u8) -> TestbedBuilder {
        self.index = index;
        self
    }

    /// Sets the simulator seed directly.
    pub fn seed(mut self, seed: u64) -> TestbedBuilder {
        self.seed = seed;
        self
    }

    /// Derives index and seed from a campaign-level slot and seed (see the
    /// type-level docs for the derivation rules).
    ///
    /// The index wraps modulo 255 (`slot % 255 + 1`) so mega-fleet slots
    /// beyond 254 stay inside `u8` without ever colliding with the
    /// `10.0.0.0/24` default plan at index 0. Identical to `slot + 1` for
    /// the 34-device Table 1 fleet. Testbeds are isolated simulators, so
    /// two far-apart slots sharing an address plan never interact.
    pub fn campaign_slot(self, slot: usize, campaign_seed: u64) -> TestbedBuilder {
        let tag_seed = campaign_seed ^ Self::tag_hash(&self.tag);
        self.index((slot % 255 + 1) as u8).seed(tag_seed)
    }

    /// The per-tag hash folded into campaign seeds.
    fn tag_hash(tag: &str) -> u64 {
        tag.bytes().fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
    }

    /// Builds and boots the testbed (see [`Testbed::new`] for panics).
    pub fn build(self) -> Testbed {
        Testbed::new(&self.tag, self.policy, self.index, self.seed)
    }
}

impl Testbed {
    /// Builds and boots a testbed for one gateway model, then runs DHCP on
    /// both sides until the client is configured.
    ///
    /// # Panics
    /// Panics if bring-up does not complete — a testbed that cannot even
    /// DHCP is a bug, not a measurement.
    pub fn new(tag: &str, policy: GatewayPolicy, index: u8, seed: u64) -> Testbed {
        // Kept as the positional primitive; prefer [`Testbed::builder`]
        // for named parameters and campaign slot/seed derivation.
        let mut sim = Simulator::new(seed);
        let server_addr = Ipv4Addr::new(10, 0, index, 1);

        // Test server: static address, DHCP service for the gateway's WAN
        // side, the hiit.fi DNS zone, and echo responders.
        let mut server = Host::new("test-server");
        server.add_iface(PortId(0), IfaceConfig::new(server_addr, 24));
        server.enable_dhcp_server(
            PortId(0),
            DhcpServerConfig {
                server_addr,
                pool_start: Ipv4Addr::new(10, 0, index, 50),
                pool_size: 32,
                subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
                router: Some(server_addr),
                dns_servers: vec![server_addr],
                lease_secs: 7 * 24 * 3600,
            },
        );
        server.enable_dns_server(DnsZone::testbed_default(server_addr));

        // Test client: everything via DHCP from the gateway.
        let mut client = Host::new("test-client");
        client.enable_dhcp_client(PortId(0), [0x02, 0xC1, 0x1E, 0x47, 0, index]);

        let gateway = Gateway::new(tag, policy, index);

        let client = sim.add_node(Box::new(client));
        let gateway = sim.add_node(Box::new(gateway));
        let server = sim.add_node(Box::new(server));
        let lan_link =
            sim.connect(client, PortId(0), gateway, LAN_PORT, LinkConfig::ethernet_100m());
        let wan_link =
            sim.connect(gateway, WAN_PORT, server, PortId(0), LinkConfig::ethernet_100m());
        sim.boot();

        let mut tb =
            Testbed { sim, client, server, gateway, lan_link, wan_link, server_addr, index };
        tb.bring_up();
        tb
    }

    /// Starts a [`TestbedBuilder`] for `tag` (slot index 1, seed 0 until
    /// overridden).
    pub fn builder(tag: &str, policy: GatewayPolicy) -> TestbedBuilder {
        TestbedBuilder { tag: tag.to_string(), policy, index: 1, seed: 0 }
    }

    fn bring_up(&mut self) {
        let deadline = self.sim.now() + BRINGUP_LIMIT;
        while self.sim.now() < deadline {
            self.sim.run_for(Duration::from_millis(500));
            let client_ready =
                self.sim.with_node::<Host, _>(self.client, |h, _| h.dhcp_lease().is_some());
            let gw_ready =
                self.sim.with_node::<Gateway, _>(self.gateway, |g, _| g.wan_addr().is_some());
            if client_ready && gw_ready {
                return;
            }
        }
        panic!("testbed bring-up failed for device {}", self.tag());
    }

    /// The device tag.
    pub fn tag(&self) -> String {
        self.sim.node_ref::<Gateway>(self.gateway).tag.clone()
    }

    /// The client's DHCP-assigned address.
    pub fn client_addr(&self) -> Ipv4Addr {
        self.sim.node_ref::<Host>(self.client).dhcp_lease().expect("client bound").addr
    }

    /// The gateway's LAN-side address (the client's router and DNS proxy).
    pub fn gateway_lan_addr(&self) -> Ipv4Addr {
        self.sim.node_ref::<Gateway>(self.gateway).lan_addr()
    }

    /// The gateway's DHCP-acquired WAN address.
    pub fn gateway_wan_addr(&self) -> Ipv4Addr {
        self.sim.node_ref::<Gateway>(self.gateway).wan_addr().expect("gateway bound")
    }

    /// Runs the simulation for `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: Instant) {
        self.sim.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.sim.now()
    }

    /// Drives the test client.
    pub fn with_client<R>(&mut self, f: impl FnOnce(&mut Host, &mut NodeCtx) -> R) -> R {
        self.sim.with_node::<Host, _>(self.client, f)
    }

    /// Drives the test server.
    pub fn with_server<R>(&mut self, f: impl FnOnce(&mut Host, &mut NodeCtx) -> R) -> R {
        self.sim.with_node::<Host, _>(self.server, f)
    }

    /// Inspects the gateway (diagnostics only — measurements must observe
    /// from the hosts).
    pub fn with_gateway<R>(&mut self, f: impl FnOnce(&mut Gateway, &mut NodeCtx) -> R) -> R {
        self.sim.with_node::<Gateway, _>(self.gateway, f)
    }

    /// Opens a telemetry span named `name` at the current simulated time.
    ///
    /// Returns [`SpanId::DISABLED`] (recording nothing) when telemetry is
    /// off, so probes can mark their phases unconditionally at zero cost.
    pub fn span_begin(&mut self, name: &str) -> SpanId {
        let now = self.sim.now();
        match self.sim.telemetry_mut() {
            Some(t) => t.spans.begin(name, now),
            None => SpanId::DISABLED,
        }
    }

    /// Like [`Testbed::span_begin`], with a viewer-visible argument (shown
    /// in the Perfetto detail pane).
    pub fn span_begin_arg(&mut self, name: &str, arg: String) -> SpanId {
        let now = self.sim.now();
        match self.sim.telemetry_mut() {
            Some(t) => t.spans.begin_with_arg(name, arg, now),
            None => SpanId::DISABLED,
        }
    }

    /// Closes a span opened by [`Testbed::span_begin`] at the current
    /// simulated time. A no-op for [`SpanId::DISABLED`].
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.sim.now();
        if let Some(t) = self.sim.telemetry_mut() {
            t.spans.end(id, now);
        }
    }
}
