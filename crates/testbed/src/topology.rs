//! General topology construction — the builder behind every testbed preset.
//!
//! The seed repo hard-coded the paper's Figure-1 triple (client, gateway,
//! server) into [`Testbed`](crate::Testbed) and hand-rolled the dual-NAT
//! variant next to it. [`TopologyBuilder`] replaces both with a declarative
//! module graph in the PetrichorIT/inet style: named nodes are added in a
//! deliberate order (the order fixes [`NodeId`]s and per-node RNG streams,
//! so presets keep it stable for reproducibility), wired with
//! point-to-point links or through learning [`Switch`]es, then built into a
//! booted [`Topology`] whose DHCP clients and gateways are brought up in
//! lock-step.
//!
//! ```
//! use hgw_core::{LinkConfig, PortId};
//! use hgw_gateway::{Gateway, GatewayPolicy, LAN_PORT, WAN_PORT};
//! use hgw_stack::host::Host;
//! use hgw_stack::iface::IfaceConfig;
//! use hgw_testbed::TopologyBuilder;
//! use std::net::Ipv4Addr;
//!
//! let mut b = TopologyBuilder::new(7);
//! let mut laptop = Host::new("laptop");
//! laptop.enable_dhcp_client(PortId(0), [2, 0, 0, 0, 0, 1]);
//! let laptop = b.host("laptop", laptop);
//! let gw = b.gateway("gateway", Gateway::new("dev", GatewayPolicy::well_behaved(), 1));
//! let mut server = Host::new("server");
//! server.add_iface(PortId(0), IfaceConfig::new(Ipv4Addr::new(10, 0, 1, 1), 24));
//! server.enable_dhcp_server(PortId(0), hgw_stack::dhcp::DhcpServerConfig {
//!     server_addr: Ipv4Addr::new(10, 0, 1, 1),
//!     pool_start: Ipv4Addr::new(10, 0, 1, 50),
//!     pool_size: 8,
//!     subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
//!     router: None,
//!     dns_servers: vec![],
//!     lease_secs: 3600,
//! });
//! let server = b.host("server", server);
//! b.link(laptop, PortId(0), gw, LAN_PORT, LinkConfig::ethernet_100m());
//! b.link(gw, WAN_PORT, server, PortId(0), LinkConfig::ethernet_100m());
//! let topo = b.build();
//! assert_eq!(topo.node_id("laptop"), topo.lan_hosts()[0]);
//! ```

use std::net::Ipv4Addr;

use hgw_core::{
    Duration, Instant, LinkConfig, LinkId, Node, NodeCtx, NodeId, PortId, SimCore, SpanId,
};
use hgw_gateway::Gateway;
use hgw_stack::host::Host;
use hgw_stack::switch::Switch;

use crate::dual::Side;
use crate::kind::NodeKind;

/// The statically dispatched simulator every topology runs on: node slots
/// are [`NodeKind`] values, so the event loop dispatches by match instead
/// of through `Box<dyn Node>` vtables.
pub type TopologySim = SimCore<NodeKind>;

/// How long a topology's bring-up phase (all DHCP clients bound, all
/// gateway WAN sides configured) is allowed to take.
const BRINGUP_LIMIT: Duration = Duration::from_secs(30);

/// Bring-up polls the readiness predicate every half second of virtual
/// time, matching the seed testbed's cadence bit for bit.
const BRINGUP_STEP: Duration = Duration::from_millis(500);

/// Handle to a node added to a [`TopologyBuilder`] (valid only for the
/// builder that returned it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHandle(usize);

/// Handle to a link added to a [`TopologyBuilder`]; resolve it to the
/// simulator's [`LinkId`] with [`Topology::link`] after building.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkHandle(usize);

/// Host-addressed node selector used by the preset accessors
/// (`with_host` on [`Testbed`](crate::Testbed) and
/// [`DualNatTestbed`](crate::DualNatTestbed)).
///
/// Replaces the positional `with_client` / `with_server` closure accessors:
/// the address names *which* host, the preset maps it to the topology's
/// [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostId {
    /// The first (or only) LAN host — the paper's test client.
    Client,
    /// The `i`-th LAN host behind the gateway; `Lan(0)` is `Client`.
    Lan(usize),
    /// The WAN-side host (test server or rendezvous router).
    Server,
}

impl From<Side> for HostId {
    /// Maps a dual-NAT side to its LAN host (`A` → `Lan(0)`, `B` → `Lan(1)`).
    fn from(side: Side) -> HostId {
        match side {
            Side::A => HostId::Lan(0),
            Side::B => HostId::Lan(1),
        }
    }
}

/// What kind of node a topology slot holds (drives bring-up readiness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// A [`Host`] with a DHCP client — bring-up waits for its lease.
    DhcpHost,
    /// A statically configured [`Host`].
    StaticHost,
    /// A [`Gateway`] — bring-up waits for its WAN address.
    Gateway,
    /// A learning [`Switch`].
    Switch,
    /// An ad-hoc [`Node`] added through [`TopologyBuilder::custom`] —
    /// always considered ready during bring-up.
    Custom,
}

// Wide by way of the inline NodeKind variants; build-time only, never hot.
#[allow(clippy::large_enum_variant)]
enum Spec {
    Ready(NodeKind),
    /// Switches are materialized at build time, once their final port
    /// count (one per [`TopologyBuilder::attach`]) is known.
    Switch {
        ports: usize,
    },
}

/// Declarative builder for a [`Topology`] (see the module docs for the
/// lifecycle and a worked example).
pub struct TopologyBuilder {
    seed: u64,
    names: Vec<String>,
    kinds: Vec<Kind>,
    specs: Vec<Spec>,
    links: Vec<(usize, PortId, usize, PortId, LinkConfig)>,
    boxed_oracle: bool,
}

impl TopologyBuilder {
    /// A builder whose simulator will be seeded with `seed`.
    pub fn new(seed: u64) -> TopologyBuilder {
        TopologyBuilder {
            seed,
            names: Vec::new(),
            kinds: Vec::new(),
            specs: Vec::new(),
            links: Vec::new(),
            boxed_oracle: cfg!(feature = "boxed-oracle"),
        }
    }

    /// Forces every node into the [`NodeKind::Custom`] boxed representation
    /// (dynamic dispatch), regardless of its declared type. The default is
    /// `false` unless the `boxed-oracle` cargo feature is enabled.
    ///
    /// The two representations are required to produce bit-identical event
    /// streams — this switch exists so differential tests (and the CI
    /// oracle leg) can prove it on full topologies.
    pub fn boxed_oracle(mut self, enabled: bool) -> TopologyBuilder {
        self.boxed_oracle = enabled;
        self
    }

    fn push(&mut self, name: &str, kind: Kind, spec: Spec) -> NodeHandle {
        assert!(
            !self.names.iter().any(|n| n == name),
            "TopologyBuilder: duplicate node name {name:?}"
        );
        self.names.push(name.to_string());
        self.kinds.push(kind);
        self.specs.push(spec);
        NodeHandle(self.specs.len() - 1)
    }

    /// Adds a [`Host`] endpoint. If the host has a DHCP client enabled,
    /// [`TopologyBuilder::build`] waits for its lease during bring-up.
    pub fn host(&mut self, name: &str, host: Host) -> NodeHandle {
        let kind = if host.dhcp_client_enabled() { Kind::DhcpHost } else { Kind::StaticHost };
        self.push(name, kind, Spec::Ready(NodeKind::Host(host)))
    }

    /// Adds a [`Gateway`]; bring-up waits for its DHCP-acquired WAN
    /// address.
    pub fn gateway(&mut self, name: &str, gateway: Gateway) -> NodeHandle {
        self.push(name, Kind::Gateway, Spec::Ready(NodeKind::Gateway(gateway)))
    }

    /// Adds a learning LAN [`Switch`]. Its ports are allocated one per
    /// [`TopologyBuilder::attach`] call, in call order.
    pub fn switch(&mut self, name: &str) -> NodeHandle {
        self.push(name, Kind::Switch, Spec::Switch { ports: 0 })
    }

    /// Adds an arbitrary [`Node`] outside the closed testbed universe —
    /// scripted attackers, protocol violators, measurement taps. The node
    /// rides in the [`NodeKind::Custom`] slot (dynamic dispatch for this
    /// node only) and is always considered ready during bring-up.
    pub fn custom(&mut self, name: &str, node: Box<dyn Node>) -> NodeHandle {
        self.push(name, Kind::Custom, Spec::Ready(NodeKind::Custom(node)))
    }

    /// Wires `a`'s port `ap` to `b`'s port `bp` (links are bidirectional;
    /// wiring order fixes [`LinkId`] assignment, so keep it stable in
    /// presets).
    pub fn link(
        &mut self,
        a: NodeHandle,
        ap: PortId,
        b: NodeHandle,
        bp: PortId,
        config: LinkConfig,
    ) -> LinkHandle {
        assert!(a.0 < self.specs.len() && b.0 < self.specs.len(), "link: unknown node handle");
        self.links.push((a.0, ap, b.0, bp, config));
        LinkHandle(self.links.len() - 1)
    }

    /// Wires `node`'s port `nport` to the next free port of `switch`.
    pub fn attach(
        &mut self,
        switch: NodeHandle,
        node: NodeHandle,
        nport: PortId,
        config: LinkConfig,
    ) -> LinkHandle {
        let port = match &mut self.specs[switch.0] {
            Spec::Switch { ports } => {
                let p = *ports;
                *ports += 1;
                PortId(p)
            }
            _ => panic!("attach: {} is not a switch", self.names[switch.0]),
        };
        self.link(switch, port, node, nport, config)
    }

    /// Builds the simulator, boots every node, and runs bring-up until all
    /// DHCP clients hold leases and all gateways have WAN addresses.
    ///
    /// # Panics
    /// Panics if bring-up does not complete within 30 s of virtual time —
    /// a topology that cannot even DHCP is a bug, not a measurement.
    pub fn build(self) -> Topology {
        let mut sim = TopologySim::new(self.seed);
        let oracle = self.boxed_oracle;
        let ids: Vec<NodeId> = self
            .specs
            .into_iter()
            .zip(&self.names)
            .map(|(spec, name)| {
                let node = match spec {
                    Spec::Ready(node) => node,
                    Spec::Switch { ports } => NodeKind::Switch(Switch::new(name, ports)),
                };
                sim.add_node(if oracle { node.into_boxed() } else { node })
            })
            .collect();
        let links: Vec<LinkId> = self
            .links
            .into_iter()
            .map(|(a, ap, b, bp, cfg)| sim.connect(ids[a], ap, ids[b], bp, cfg))
            .collect();
        sim.boot();
        let mut topo = Topology { sim, names: self.names, kinds: self.kinds, ids, links };
        topo.bring_up();
        topo
    }
}

/// A booted, brought-up node graph: the simulator plus the name and role
/// tables the builder recorded. Presets either embed one (and deref to it)
/// or address nodes through it by name.
pub struct Topology {
    /// The simulator owning every node.
    pub sim: TopologySim,
    names: Vec<String>,
    kinds: Vec<Kind>,
    ids: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl Topology {
    /// Runs DHCP everywhere until every client/gateway is configured.
    fn bring_up(&mut self) {
        let deadline = self.sim.now() + BRINGUP_LIMIT;
        while self.sim.now() < deadline {
            self.sim.run_for(BRINGUP_STEP);
            if self.unready_node().is_none() {
                return;
            }
        }
        let name = self.unready_node().map(|i| self.names[i].clone()).unwrap_or_default();
        panic!("topology bring-up failed: {name} never configured");
    }

    /// Index of the first node still waiting on DHCP, if any.
    fn unready_node(&mut self) -> Option<usize> {
        (0..self.ids.len()).find(|&i| {
            let id = self.ids[i];
            match self.kinds[i] {
                Kind::DhcpHost => {
                    self.sim.with_node::<Host, _>(id, |h, _| h.dhcp_lease().is_none())
                }
                Kind::Gateway => {
                    self.sim.with_node::<Gateway, _>(id, |g, _| g.wan_addr().is_none())
                }
                Kind::StaticHost | Kind::Switch | Kind::Custom => false,
            }
        })
    }

    /// The [`NodeId`] of the node named `name`.
    ///
    /// # Panics
    /// Panics on an unknown name; use [`Topology::try_node_id`] to probe.
    pub fn node_id(&self, name: &str) -> NodeId {
        self.try_node_id(name).unwrap_or_else(|| panic!("topology: no node named {name:?}"))
    }

    /// The [`NodeId`] of the node named `name`, if it exists.
    pub fn try_node_id(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(|i| self.ids[i])
    }

    /// The builder-given name of `id`, if the node exists.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.ids.iter().position(|&n| n == id).map(|i| self.names[i].as_str())
    }

    /// Every [`Host`] node in insertion order (LAN hosts and servers).
    pub fn host_nodes(&self) -> Vec<NodeId> {
        self.by_kind(&[Kind::DhcpHost, Kind::StaticHost])
    }

    /// Every DHCP-configured [`Host`] in insertion order — the LAN side of
    /// the topology.
    pub fn lan_hosts(&self) -> Vec<NodeId> {
        self.by_kind(&[Kind::DhcpHost])
    }

    /// Every [`Gateway`] node in insertion order.
    pub fn gateway_nodes(&self) -> Vec<NodeId> {
        self.by_kind(&[Kind::Gateway])
    }

    /// Turns on NAT binding-lifecycle tracing on every gateway in the
    /// topology (see [`Gateway::enable_lifecycle_tracing`]). Pure
    /// observability: traced runs stay bit-identical to untraced ones.
    pub fn enable_lifecycle_tracing(&mut self) {
        for id in self.gateway_nodes() {
            self.sim.with_node::<Gateway, _>(id, |g, _| g.enable_lifecycle_tracing());
        }
    }

    fn by_kind(&self, kinds: &[Kind]) -> Vec<NodeId> {
        (0..self.ids.len())
            .filter(|&i| kinds.contains(&self.kinds[i]))
            .map(|i| self.ids[i])
            .collect()
    }

    /// Resolves a [`LinkHandle`] from the builder to the simulator's
    /// [`LinkId`].
    pub fn link(&self, handle: LinkHandle) -> LinkId {
        self.links[handle.0]
    }

    /// Drives the node `id` as a `T` (panics if `id` is not a `T`).
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut NodeCtx) -> R,
    ) -> R {
        self.sim.with_node::<T, _>(id, f)
    }

    /// The DHCP-assigned address of the host node `id` (panics if unbound).
    pub fn host_addr(&self, id: NodeId) -> Ipv4Addr {
        self.sim.node_ref::<Host>(id).dhcp_lease().expect("host bound").addr
    }

    /// Runs the simulation for `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: Instant) {
        self.sim.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.sim.now()
    }

    /// Starts a telemetry span builder for `name`; attach a viewer-visible
    /// argument with [`Span::arg`] and open it with [`Span::begin`]:
    ///
    /// ```no_run
    /// # use hgw_gateway::GatewayPolicy;
    /// # use hgw_testbed::Testbed;
    /// # let mut tb = Testbed::builder("owrt", GatewayPolicy::well_behaved()).build();
    /// let span = tb.span("udp1-trial").arg("sleep=30s").begin();
    /// // ... probe phase ...
    /// tb.span_end(span);
    /// ```
    ///
    /// When telemetry is off, [`Span::begin`] returns [`SpanId::DISABLED`]
    /// and records nothing, so probes mark their phases unconditionally at
    /// zero cost.
    pub fn span<'a>(&'a mut self, name: &'a str) -> Span<'a> {
        Span { sim: &mut self.sim, name, arg: None }
    }

    /// Closes a span opened by [`Topology::span`] at the current simulated
    /// time. A no-op for [`SpanId::DISABLED`].
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.sim.now();
        if let Some(t) = self.sim.telemetry_mut() {
            t.spans.end(id, now);
        }
    }
}

/// In-flight span builder returned by [`Topology::span`].
#[must_use = "a span records nothing until begin() is called"]
pub struct Span<'a> {
    sim: &'a mut TopologySim,
    name: &'a str,
    arg: Option<String>,
}

impl<'a> Span<'a> {
    /// Attaches a viewer-visible argument (shown in the Perfetto detail
    /// pane).
    pub fn arg(mut self, arg: impl Into<String>) -> Span<'a> {
        self.arg = Some(arg.into());
        self
    }

    /// Opens the span at the current simulated time.
    pub fn begin(self) -> SpanId {
        let now = self.sim.now();
        match self.sim.telemetry_mut() {
            Some(t) => match self.arg {
                Some(a) => t.spans.begin_with_arg(self.name, a, now),
                None => t.spans.begin(self.name, now),
            },
            None => SpanId::DISABLED,
        }
    }
}
