//! A dual-NAT topology for peer-to-peer traversal experiments — the STUN /
//! hole-punching measurements the paper schedules as future work (§5).
//!
//! ```text
//!   client A ──(LAN)── gateway A ──(WAN)──┐
//!                                         ├── rendezvous server (routes
//!   client B ──(LAN)── gateway B ──(WAN)──┘    between its two subnets)
//! ```
//!
//! The rendezvous server plays both the STUN server (it reports each
//! client's external endpoint) and "the Internet" (it forwards packets
//! between the two gateway subnets).
//!
//! Since PR 7 this is a preset over
//! [`TopologyBuilder`], not a parallel hand-rolled
//! implementation: the node graph (and therefore every RNG stream and
//! event sequence) is identical to the seed's, but nested-NAT variants are
//! now one `link` call away. Hosts are addressed with
//! [`HostId`] — `Side` converts via `side.into()`.

use std::net::Ipv4Addr;

use hgw_core::{LinkConfig, NodeCtx, NodeId, PortId};
use hgw_gateway::{Gateway, GatewayPolicy, LAN_PORT, WAN_PORT};
use hgw_stack::dhcp::DhcpServerConfig;
use hgw_stack::host::Host;
use hgw_stack::iface::IfaceConfig;

use crate::topology::{HostId, Topology, TopologyBuilder};

/// Which side of the dual topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Client/gateway A (subnets 192.168.101.0/24 and 10.0.101.0/24).
    A,
    /// Client/gateway B (subnets 192.168.102.0/24 and 10.0.102.0/24).
    B,
}

/// Two clients behind two (possibly different) gateways, joined by a
/// routing rendezvous server. Derefs to [`Topology`] for the generic
/// surface (`sim`, `run_for`, `with_node`, …).
pub struct DualNatTestbed {
    /// The underlying topology.
    pub topo: Topology,
    /// Client behind gateway A.
    pub client_a: NodeId,
    /// Client behind gateway B.
    pub client_b: NodeId,
    /// Gateway A.
    pub gateway_a: NodeId,
    /// Gateway B.
    pub gateway_b: NodeId,
    /// The rendezvous/router node.
    pub server: NodeId,
    /// The server's address on the A side (`10.0.101.1`).
    pub server_addr_a: Ipv4Addr,
    /// The server's address on the B side (`10.0.102.1`).
    pub server_addr_b: Ipv4Addr,
}

impl std::ops::Deref for DualNatTestbed {
    type Target = Topology;
    fn deref(&self) -> &Topology {
        &self.topo
    }
}

impl std::ops::DerefMut for DualNatTestbed {
    fn deref_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }
}

const IDX_A: u8 = 101;
const IDX_B: u8 = 102;

impl DualNatTestbed {
    /// Builds and boots the topology; panics if bring-up fails.
    pub fn new(
        tag_a: &str,
        policy_a: GatewayPolicy,
        tag_b: &str,
        policy_b: GatewayPolicy,
        seed: u64,
    ) -> DualNatTestbed {
        let mut b = TopologyBuilder::new(seed);
        let server_addr_a = Ipv4Addr::new(10, 0, IDX_A, 1);
        let server_addr_b = Ipv4Addr::new(10, 0, IDX_B, 1);

        let mut server = Host::new("rendezvous");
        server.forwarding = true;
        for (port, addr, idx) in
            [(PortId(0), server_addr_a, IDX_A), (PortId(1), server_addr_b, IDX_B)]
        {
            server.add_iface(port, IfaceConfig::new(addr, 24));
            server.enable_dhcp_server(
                port,
                DhcpServerConfig {
                    server_addr: addr,
                    pool_start: Ipv4Addr::new(10, 0, idx, 50),
                    pool_size: 16,
                    subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
                    router: Some(addr),
                    dns_servers: vec![addr],
                    lease_secs: 7 * 24 * 3600,
                },
            );
        }

        let mut client_a = Host::new("client-a");
        client_a.enable_dhcp_client(PortId(0), [0x02, 0xAA, 0, 0, 0, IDX_A]);
        let mut client_b = Host::new("client-b");
        client_b.enable_dhcp_client(PortId(0), [0x02, 0xBB, 0, 0, 0, IDX_B]);

        // Node and link order below is the seed repo's (clients, gateways,
        // rendezvous) — part of the reproducibility contract.
        let client_a = b.host("client-a", client_a);
        let client_b = b.host("client-b", client_b);
        let gateway_a = b.gateway("gateway-a", Gateway::new(tag_a, policy_a, IDX_A));
        let gateway_b = b.gateway("gateway-b", Gateway::new(tag_b, policy_b, IDX_B));
        let server = b.host("rendezvous", server);
        b.link(client_a, PortId(0), gateway_a, LAN_PORT, LinkConfig::ethernet_100m());
        b.link(gateway_a, WAN_PORT, server, PortId(0), LinkConfig::ethernet_100m());
        b.link(client_b, PortId(0), gateway_b, LAN_PORT, LinkConfig::ethernet_100m());
        b.link(gateway_b, WAN_PORT, server, PortId(1), LinkConfig::ethernet_100m());
        let topo = b.build();

        DualNatTestbed {
            client_a: topo.node_id("client-a"),
            client_b: topo.node_id("client-b"),
            gateway_a: topo.node_id("gateway-a"),
            gateway_b: topo.node_id("gateway-b"),
            server: topo.node_id("rendezvous"),
            server_addr_a,
            server_addr_b,
            topo,
        }
    }

    /// Resolves a [`HostId`] to the underlying node (`Lan(0)` is client A,
    /// `Lan(1)` client B, `Server` the rendezvous).
    pub fn host_node(&self, host: HostId) -> NodeId {
        match host {
            HostId::Client | HostId::Lan(0) => self.client_a,
            HostId::Lan(1) => self.client_b,
            HostId::Lan(i) => panic!("dual-NAT testbed has 2 LAN hosts, no Lan({i})"),
            HostId::Server => self.server,
        }
    }

    /// Drives the host addressed by `host`; convert a [`Side`] with
    /// `side.into()`.
    pub fn with_host<R>(
        &mut self,
        host: HostId,
        f: impl FnOnce(&mut Host, &mut NodeCtx) -> R,
    ) -> R {
        let id = self.host_node(host);
        self.topo.sim.with_node::<Host, _>(id, f)
    }

    /// Drives the node `id` as a `T` (panics if `id` is not a `T`).
    ///
    /// Also available through the [`Topology`] deref; this inherent copy
    /// lets call sites pass a testbed field as the id
    /// (`tb.with_node::<Gateway, _>(tb.gateway_b, f)`) without tripping
    /// the borrow checker on the deref.
    pub fn with_node<T: hgw_core::Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut NodeCtx) -> R,
    ) -> R {
        self.topo.sim.with_node::<T, _>(id, f)
    }

    /// The rendezvous address a given side should talk to.
    pub fn rendezvous_addr(&self, side: Side) -> Ipv4Addr {
        match side {
            Side::A => self.server_addr_a,
            Side::B => self.server_addr_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgw_core::Duration;
    use std::net::SocketAddrV4;

    #[test]
    fn both_clients_reach_the_rendezvous() {
        let mut tb = DualNatTestbed::new(
            "a",
            GatewayPolicy::well_behaved(),
            "b",
            GatewayPolicy::well_behaved(),
            7,
        );
        let srv = tb.with_host(HostId::Server, |h, _| {
            let s = h.udp_bind(3478);
            h.udp_set_echo(s, true);
            s
        });
        for side in [Side::A, Side::B] {
            let dst = SocketAddrV4::new(tb.rendezvous_addr(side), 3478);
            let sock = tb.with_host(side.into(), |h, ctx| {
                let s = h.udp_bind_ephemeral();
                h.udp_send(ctx, s, dst, b"stun");
                s
            });
            tb.run_for(Duration::from_millis(100));
            assert!(
                tb.with_host(side.into(), |h, _| h.udp_recv(sock)).is_some(),
                "{side:?} echo failed"
            );
        }
        let _ = srv;
    }

    #[test]
    fn server_routes_between_subnets() {
        // A packet from client A to gateway B's WAN address must transit
        // the rendezvous router (even if gateway B then filters it).
        let mut tb = DualNatTestbed::new(
            "a",
            GatewayPolicy::well_behaved(),
            "b",
            GatewayPolicy::well_behaved(),
            9,
        );
        let gw_b_wan =
            tb.with_node::<hgw_gateway::Gateway, _>(tb.gateway_b, |g, _| g.wan_addr().unwrap());
        tb.with_host(Side::A.into(), |h, ctx| {
            let s = h.udp_bind_ephemeral();
            h.udp_send(ctx, s, SocketAddrV4::new(gw_b_wan, 12345), b"x");
        });
        tb.run_for(Duration::from_millis(100));
        // The packet reached gateway B (and was dropped for lack of a
        // binding — visible in its stats).
        let drops = tb
            .with_node::<hgw_gateway::Gateway, _>(tb.gateway_b, |g, _| g.stats.dropped_no_binding);
        assert!(drops > 0, "packet should have transited the router to gateway B");
    }

    #[test]
    fn side_converts_to_host_id() {
        assert_eq!(HostId::from(Side::A), HostId::Lan(0));
        assert_eq!(HostId::from(Side::B), HostId::Lan(1));
    }
}
