//! A dual-NAT topology for peer-to-peer traversal experiments — the STUN /
//! hole-punching measurements the paper schedules as future work (§5).
//!
//! ```text
//!   client A ──(LAN)── gateway A ──(WAN)──┐
//!                                         ├── rendezvous server (routes
//!   client B ──(LAN)── gateway B ──(WAN)──┘    between its two subnets)
//! ```
//!
//! The rendezvous server plays both the STUN server (it reports each
//! client's external endpoint) and "the Internet" (it forwards packets
//! between the two gateway subnets).

use std::net::Ipv4Addr;

use hgw_core::{Duration, LinkConfig, NodeCtx, NodeId, PortId, Simulator};
use hgw_gateway::{Gateway, GatewayPolicy, LAN_PORT, WAN_PORT};
use hgw_stack::dhcp::DhcpServerConfig;
use hgw_stack::host::Host;
use hgw_stack::iface::IfaceConfig;

/// Which side of the dual topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Client/gateway A (subnets 192.168.101.0/24 and 10.0.101.0/24).
    A,
    /// Client/gateway B (subnets 192.168.102.0/24 and 10.0.102.0/24).
    B,
}

/// Two clients behind two (possibly different) gateways, joined by a
/// routing rendezvous server.
pub struct DualNatTestbed {
    /// The simulator owning all five nodes.
    pub sim: Simulator,
    /// Client behind gateway A.
    pub client_a: NodeId,
    /// Client behind gateway B.
    pub client_b: NodeId,
    /// Gateway A.
    pub gateway_a: NodeId,
    /// Gateway B.
    pub gateway_b: NodeId,
    /// The rendezvous/router node.
    pub server: NodeId,
    /// The server's address on the A side (`10.0.101.1`).
    pub server_addr_a: Ipv4Addr,
    /// The server's address on the B side (`10.0.102.1`).
    pub server_addr_b: Ipv4Addr,
}

const IDX_A: u8 = 101;
const IDX_B: u8 = 102;

impl DualNatTestbed {
    /// Builds and boots the topology; panics if bring-up fails.
    pub fn new(
        tag_a: &str,
        policy_a: GatewayPolicy,
        tag_b: &str,
        policy_b: GatewayPolicy,
        seed: u64,
    ) -> DualNatTestbed {
        let mut sim = Simulator::new(seed);
        let server_addr_a = Ipv4Addr::new(10, 0, IDX_A, 1);
        let server_addr_b = Ipv4Addr::new(10, 0, IDX_B, 1);

        let mut server = Host::new("rendezvous");
        server.forwarding = true;
        for (port, addr, idx) in
            [(PortId(0), server_addr_a, IDX_A), (PortId(1), server_addr_b, IDX_B)]
        {
            server.add_iface(port, IfaceConfig::new(addr, 24));
            server.enable_dhcp_server(
                port,
                DhcpServerConfig {
                    server_addr: addr,
                    pool_start: Ipv4Addr::new(10, 0, idx, 50),
                    pool_size: 16,
                    subnet_mask: Ipv4Addr::new(255, 255, 255, 0),
                    router: Some(addr),
                    dns_servers: vec![addr],
                    lease_secs: 7 * 24 * 3600,
                },
            );
        }

        let mut client_a = Host::new("client-a");
        client_a.enable_dhcp_client(PortId(0), [0x02, 0xAA, 0, 0, 0, IDX_A]);
        let mut client_b = Host::new("client-b");
        client_b.enable_dhcp_client(PortId(0), [0x02, 0xBB, 0, 0, 0, IDX_B]);
        let gw_a = Gateway::new(tag_a, policy_a, IDX_A);
        let gw_b = Gateway::new(tag_b, policy_b, IDX_B);

        let client_a = sim.add_node(Box::new(client_a));
        let client_b = sim.add_node(Box::new(client_b));
        let gateway_a = sim.add_node(Box::new(gw_a));
        let gateway_b = sim.add_node(Box::new(gw_b));
        let server = sim.add_node(Box::new(server));
        sim.connect(client_a, PortId(0), gateway_a, LAN_PORT, LinkConfig::ethernet_100m());
        sim.connect(gateway_a, WAN_PORT, server, PortId(0), LinkConfig::ethernet_100m());
        sim.connect(client_b, PortId(0), gateway_b, LAN_PORT, LinkConfig::ethernet_100m());
        sim.connect(gateway_b, WAN_PORT, server, PortId(1), LinkConfig::ethernet_100m());
        sim.boot();

        let mut tb = DualNatTestbed {
            sim,
            client_a,
            client_b,
            gateway_a,
            gateway_b,
            server,
            server_addr_a,
            server_addr_b,
        };
        tb.bring_up();
        tb
    }

    fn bring_up(&mut self) {
        for _ in 0..60 {
            self.sim.run_for(Duration::from_millis(500));
            let ready = self
                .sim
                .with_node::<Host, _>(self.client_a, |h, _| h.dhcp_lease().is_some())
                && self.sim.with_node::<Host, _>(self.client_b, |h, _| h.dhcp_lease().is_some());
            if ready {
                return;
            }
        }
        panic!("dual-NAT bring-up failed");
    }

    /// Runs the simulation for `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Drives one of the clients.
    pub fn with_client<R>(
        &mut self,
        side: Side,
        f: impl FnOnce(&mut Host, &mut NodeCtx) -> R,
    ) -> R {
        let id = match side {
            Side::A => self.client_a,
            Side::B => self.client_b,
        };
        self.sim.with_node::<Host, _>(id, f)
    }

    /// Drives the rendezvous server.
    pub fn with_server<R>(&mut self, f: impl FnOnce(&mut Host, &mut NodeCtx) -> R) -> R {
        self.sim.with_node::<Host, _>(self.server, f)
    }

    /// The rendezvous address a given side should talk to.
    pub fn rendezvous_addr(&self, side: Side) -> Ipv4Addr {
        match side {
            Side::A => self.server_addr_a,
            Side::B => self.server_addr_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddrV4;

    #[test]
    fn both_clients_reach_the_rendezvous() {
        let mut tb = DualNatTestbed::new(
            "a",
            GatewayPolicy::well_behaved(),
            "b",
            GatewayPolicy::well_behaved(),
            7,
        );
        let srv = tb.with_server(|h, _| {
            let s = h.udp_bind(3478);
            h.udp_set_echo(s, true);
            s
        });
        for side in [Side::A, Side::B] {
            let dst = SocketAddrV4::new(tb.rendezvous_addr(side), 3478);
            let sock = tb.with_client(side, |h, ctx| {
                let s = h.udp_bind_ephemeral();
                h.udp_send(ctx, s, dst, b"stun");
                s
            });
            tb.run_for(Duration::from_millis(100));
            assert!(
                tb.with_client(side, |h, _| h.udp_recv(sock)).is_some(),
                "{side:?} echo failed"
            );
        }
        let _ = srv;
    }

    #[test]
    fn server_routes_between_subnets() {
        // A packet from client A to gateway B's WAN address must transit
        // the rendezvous router (even if gateway B then filters it).
        let mut tb = DualNatTestbed::new(
            "a",
            GatewayPolicy::well_behaved(),
            "b",
            GatewayPolicy::well_behaved(),
            9,
        );
        let gw_b_wan =
            tb.sim.with_node::<hgw_gateway::Gateway, _>(tb.gateway_b, |g, _| g.wan_addr().unwrap());
        tb.with_client(Side::A, |h, ctx| {
            let s = h.udp_bind_ephemeral();
            h.udp_send(ctx, s, SocketAddrV4::new(gw_b_wan, 12345), b"x");
        });
        tb.run_for(Duration::from_millis(100));
        // The packet reached gateway B (and was dropped for lack of a
        // binding — visible in its stats).
        let drops = tb
            .sim
            .with_node::<hgw_gateway::Gateway, _>(tb.gateway_b, |g, _| g.stats.dropped_no_binding);
        assert!(drops > 0, "packet should have transited the router to gateway B");
    }
}
