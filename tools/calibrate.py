#!/usr/bin/env python3
"""Calibration of the 34 device profiles against the published results.

Where the paper states a number (named device values, population medians,
means, mins, counts), the profile is solved to reproduce it; where only the
plot ordering is visible, values are reconstructed monotonically along the
published x-axis order. This script verifies every constraint and emits
`crates/devices/src/data.rs`.

Run: python3 tools/calibrate.py
"""

TAGS = ["al","ap","as1","be1","be2","bu1","dl1","dl10","dl2","dl3","dl4","dl5",
        "dl6","dl7","dl8","dl9","ed","je","ls1","ls2","ls3","ls5","ng1","ng2",
        "ng3","ng4","ng5","nw1","owrt","smc","te","to","we","zy1"]

VENDOR = {
 "al":("A-Link","WNAP","e2.0.9A"),
 "ap":("Apple","Airport Express","7.4.2"),
 "as1":("Asus","RT-N15","2.0.1.1"),
 "be1":("Belkin","Wireless N Router","F5D8236-4_WW_3.00.02"),
 "be2":("Belkin","Enhanced N150","F6D4230-4_WW_1.00.03"),
 "bu1":("Buffalo","WZR-AGL300NH","R1.06/B1.05"),
 "dl1":("D-Link","DIR-300","1.03"),
 "dl2":("D-Link","DIR-300","1.04"),
 "dl3":("D-Link","DI-524up","v1.06"),
 "dl4":("D-Link","DI-524","v2.0.4"),
 "dl5":("D-Link","DIR-100","v1.12"),
 "dl6":("D-Link","DIR-600","v2.01"),
 "dl7":("D-Link","DIR-615","v4.00"),
 "dl8":("D-Link","DIR-635","v2.33EU"),
 "dl9":("D-Link","DI-604","v3.09"),
 "dl10":("D-Link","DI-713P","2.60 build 6a"),
 "ed":("Edimax","6104WG","2.63"),
 "je":("Jensen","Air:Link 59300","1.15"),
 "ls1":("Linksys","BEFSR41c2","1.45.11"),
 "ls2":("Linksys","WR54G","v7.00.1"),
 "ls3":("Linksys","WRT54GL v1.1","v4.30.7"),
 "ls5":("Linksys","WRT54GL-EU","v4.30.7"),
 "owrt":("Linksys","WRT54G","OpenWRT RC5"),
 "to":("Linksys","WRT54GL v1.1","tomato 1.27"),
 "ng1":("Netgear","RP614 v4","V1.0.2_06.29"),
 "ng2":("Netgear","WGR614 v7","(1.0.13_1.0.13)"),
 "ng3":("Netgear","WGR614 v9","V1.2.6_18.0.17"),
 "ng4":("Netgear","WNR2000-100PES","v.1.0.0.34_29.0.45"),
 "ng5":("Netgear","WGR614 v4","V5.0_07"),
 "nw1":("Netwjork","54M","Ver 1.2.6"),
 "smc":("SMC","Barricade SMC7004VBR","R1.07"),
 "te":("Telewell","TW-3G","V7.04b3"),
 "we":("Webee","Wireless N Router","e2.0.9D"),
 "zy1":("ZyXel","P-335U","V3.60(AMB.2)C0"),
}

# ---------------------------------------------------------------- UDP-1 --
# Figure 3 x order (ascending). Stated: je..ed = 30 s cluster; ls1 = 691;
# be2 ~ 450; pop median 90.00; pop mean 160.41.
UDP1_ORDER = ["je","owrt","te","to","ed","al","we","ng2","ap","ls3","ls5",
              "dl1","dl2","dl6","dl7","as1","bu1","ls2","nw1","dl3","dl5",
              "be1","dl10","dl4","dl8","smc","dl9","ng1","ng3","ng4","zy1",
              "be2","ng5","ls1"]
UDP1 = dict(zip(UDP1_ORDER, [
    30,30,30,30,30,       # je owrt te to ed (stated cluster)
    35,40,45,60,75,75,    # al we ng2 ap ls3 ls5
    80,80,85,85,88,       # dl1 dl2 dl6 dl7 as1
    90,90,                # bu1 ls2  (median pair = 90.00)
    95,100,100,           # nw1 dl3 dl5
    185,203,205,215,225,  # be1 dl10 dl4 dl8 smc
    235,250,280,300,342,  # dl9 ng1 ng3 ng4 zy1 (tuned: pop mean 160.41)
    450,500,691,          # be2 (stated ~450) ng5 ls1 (stated 691)
]))

# ---------------------------------------------------------------- UDP-2 --
# Figure 4 x order. Stated: min 54 (ap); ed/owrt/to/te = 180; be2 ~ 202;
# pop median 180.00; pop mean 174.67.
UDP2_ORDER = ["ap","ng2","we","je","ls2","nw1","be1","dl3","dl5","dl10",
              "ng3","ng4","ng5","as1","bu1","dl1","dl2","dl6","dl7","owrt",
              "te","ed","ls3","ls5","to","be2","al","dl4","dl8","dl9","ng1",
              "smc","zy1","ls1"]
UDP2 = dict(zip(UDP2_ORDER, [
    54,55,70,90,95,110,          # ap ng2 we je ls2 nw1
    120,120,120,150,160,160,     # be1 dl3 dl5 dl10 ng3 ng4
    170,175,175,180,180,180,180, # ng5 as1 bu1 dl1 dl2 dl6 dl7
    180,180,180,180,180,180,     # owrt te ed ls3 ls5 to (stated 180)
    202,203,265,268,271,274,     # be2 (stated ~202) al dl4 dl8 dl9 ng1
    277,277,277.78,              # smc zy1 ls1 (tuned: pop mean 174.67)
]))

# ---------------------------------------------------------------- UDP-3 --
# Figure 5 x order. Stated: median 181.00; mean 225.94; be1, dl10, ng3,
# ng4, be2, ng5 lengthen to their UDP-1 level; no device shortens vs UDP-2.
UDP3_ORDER = ["ng2","we","je","ls2","nw1","dl3","dl5","ap","as1","bu1",
              "dl1","dl2","dl6","dl7","owrt","te","ed","ls3","ls5","to",
              "be1","al","dl10","dl4","dl8","dl9","ng1","smc","ng3","ng4",
              "zy1","be2","ng5","ls1"]
UDP3 = dict(zip(UDP3_ORDER, [
    60,75,90,110,130,145,145,     # ng2 we je ls2 nw1 dl3 dl5
    160,175,175,180,180,180,180,  # ap as1 bu1 dl1 dl2 dl6 dl7
    180,180,180,182,182,182,      # owrt te ed | ls3 ls5 to (median pair 180/182)
    None,203,None,265,268,271,    # be1(=UDP1) al dl10(=UDP1) dl4 dl8 dl9
    274,277,None,None,            # ng1 smc ng3(=UDP1) ng4(=UDP1)
    443.96,None,None,None,        # zy1 (tuned: pop mean 225.94) be2 ng5 ls1
]))
for d in ["be1","dl10","ng3","ng4","be2","ng5"]:
    UDP3[d] = UDP1[d]
UDP3["ls1"] = 691  # keeps fig-5 order; ls1 is the long-timeout outlier

# Coarse binding timers (wide IQR in Figure 4): granularity seconds.
GRANULARITY = {"we": 30, "al": 30, "je": 10, "ng5": 10}
# Empirical per-device UDP-1 search bias under coarse timers (the binary
# search's convergence phase within the expiry grid is device-specific);
# measured once with tools/calibrate.py defaults and baked in.
UDP1_BIAS = {"we": 11.5, "al": 9.0, "je": 3.0, "ng5": 3.5}

# ---------------------------------------------------------------- TCP-1 --
# Figure 7 x order (log scale, minutes). dl10 is absent from the printed
# order; we place it beside dl9 (similar D-Link era). Stated: be1 = 239 s;
# the seven rightmost still alive after the 24 h cutoff; pop median 59.98;
# pop mean 386.46 (cutoff devices counted as 1440).
TCP1_ORDER = ["be1","ng5","be2","al","ls2","we","ls1","as1","nw1","ng2",
              "je","ng3","ng4","dl3","dl5","dl9","dl10","smc","dl4","dl1",
              "dl2","dl7","dl6","dl8","zy1","to","owrt","ap","bu1","ed",
              "ls3","ls5","ng1","te"]
TCP1_MIN = dict(zip(TCP1_ORDER, [
    239/60, 5, 10, 15, 20, 25,            # be1(stated 239 s) ng5 be2 al ls2 we
    30, 30, 35, 40, 45, 50, 50, 55, 55,   # ls1 as1 nw1 ng2 je ng3 ng4 dl3 dl5
    58, 58.96, 61, 80, 100, 120,          # dl9 dl10 smc dl4 dl1 dl2  (median pair 58.96/61)
    124, 124, 150, 184.7, 330, 1200,      # dl7 dl6 dl8 zy1 to owrt (tuned: mean 386.46)
    1440, 1440, 1440, 1440, 1440, 1440, 1440,  # ap bu1 ed ls3 ls5 ng1 te (cutoff)
]))

# ---------------------------------------------------------------- TCP-4 --
# Figure 10 x order (log scale). Stated: dl9 = smc = 16; ng1/ap ~ 1024;
# pop median 135.5; pop mean 259.21.
TCP4_ORDER = ["dl9","smc","dl10","ls1","dl4","ng2","ls5","ng3","to","ls3",
              "ng5","nw1","be1","ls2","be2","te","dl2","dl6","dl1","dl8",
              "owrt","zy1","ng4","ed","je","dl3","dl7","as1","dl5","bu1",
              "al","we","ng1","ap"]
TCP4 = dict(zip(TCP4_ORDER, [
    16,16,24,32,48,64,80,96,100,112,          # dl9 smc dl10 ls1 dl4 ng2 ls5 ng3 to ls3
    120,128,130,132,134,135,135,136,140,150,  # ng5 nw1 be1 ls2 be2 te dl2 dl6 dl1 dl8
    167,240,260,280,300,380,400,450,500,560,  # owrt zy1 ng4 ed je dl3 dl7 as1 dl5 bu1
    600,700,1024,1024,                        # al we ng1 ap (tuned: mean 259.21)
]))

# ------------------------------------------------------------- TCP-2/3 --
# Forwarding model per device: (down Mb/s, up Mb/s, aggregate Mb/s or None
# for unlimited, buffer KB). Reconstructed from Figure 8's ordering and
# named values: dl10 ~6/6, ls1 ~8/6, smc 41 up / 27 down; thirteen devices
# at wire speed; bidirectional median ~35 vs ~68 unidirectional.
FWD_ORDER = ["dl10","ls1","ap","te","owrt","smc","dl9","ed","zy1","ng4",
             "ng5","ng3","nw1","ls3","ls5","to","ls2","ng2","je","dl2",
             "dl1","we","as1","dl7","be2","be1","dl5","ng1","dl8","al",
             "dl3","dl6","bu1","dl4"]
FWD = {
  # tag: (down, up, agg, buf_kB)
  "dl10": (6.5, 6.5, 7, 64), "ls1": (9, 6.5, 10, 96),
  "ap":  (22, 20, 24, 96),  "te": (30, 28, 33, 128),
  "owrt":(34, 32, 38, 96),  "smc": (27, 41, 45, 96),
  "dl9": (42, 40, 46, 80),  "ed": (46, 44, 50, 96),
  "zy1": (50, 48, 55, 80),  "ng4": (54, 52, 60, 96),
  "ng5": (56, 54, 62, 72),  "ng3": (58, 56, 64, 80),
  "nw1": (60, 58, 66, 72),  "ls3": (62, 60, 68, 64),
  "ls5": (62, 60, 68, 64),  "to": (64, 62, 70, 72),
  "ls2": (66, 64, 72, 80),  "ng2": (68, 66, 74, 72),
  "je":  (70, 68, 76, 64),  "dl2": (74, 72, 80, 64),
  "dl1": (76, 74, 82, 64),
  # wire-speed thirteen (aggregate still finite for a few: not all reach
  # 100 Mb/s in both directions simultaneously — §4.2):
  "we":  (1000, 1000, 150, 64), "as1": (1000, 1000, 160, 56),
  "dl7": (1000, 1000, 170, 56), "be2": (1000, 1000, 180, 48),
  "be1": (1000, 1000, 190, 48), "dl5": (1000, 1000, None, 48),
  "ng1": (1000, 1000, None, 32), "dl8": (1000, 1000, None, 96),
  "al":  (1000, 1000, None, 48), "dl3": (1000, 1000, None, 40),
  "dl6": (1000, 1000, None, 48), "bu1": (1000, 1000, None, 56),
  "dl4": (1000, 1000, None, 48),
}

# UDP-5: dl8 uses a shorter timeout for DNS (port 53).
SERVICE_OVERRIDES = {"dl8": [(53, 120)]}

# ---------------------------------------------------- UDP-4 behaviors ----
# 27/34 preserve the source port; 23 of those reuse an expired binding,
# 4 quarantine it; 7 always allocate sequentially. Assignment reconstructed.
SEQUENTIAL = ["dl10","dl9","dl4","ls1","smc","nw1","zy1"]          # 7
QUARANTINE = ["be1","be2","ng5","ls2"]                              # 4
# remaining 23: preserve + reuse.

# ------------------------------------------------- unknown transports ----
# dl4, dl9, dl10, ls1 pass untranslated; 20 rewrite the IP address only
# (18 of which admit inbound → SCTP works); the other 10 drop.
PASSTHROUGH = ["dl4","dl9","dl10","ls1"]
IPREWRITE_OK = ["al","ap","bu1","dl2","dl6","dl7","ed","je","owrt","to",
                "we","as1","dl1","dl3","dl5","dl8","ls3","ls5"]     # 18 → SCTP works
IPREWRITE_NOIN = ["ng1","ng2"]                                      # 2 → SCTP fails
DROP = ["be1","be2","ls2","ng3","ng4","ng5","nw1","smc","te","zy1"] # 10

# -------------------------------------------------------- DNS over TCP ---
# 14 accept connections on TCP 53; 10 of them answer (ap via UDP upstream);
# 4 accept but never answer.
DNS_TCP_ANSWER = ["owrt","to","bu1","dl6","dl7","ed","je","we","al"]  # 9 via TCP
DNS_TCP_UDP = ["ap"]                                                  # 1 via UDP
DNS_TCP_BLACKHOLE = ["as1","dl2","ls3","ls5"]                         # 4 accept, no answer
# remaining 20 refuse.

# ------------------------------------------------------------- ICMP ------
# Table 2 reconstruction. nw1 translates nothing; everyone else at least
# {Port Unreachable, TTL Exceeded}; ls2 turns TCP-related errors into
# invalid RSTs; zy1 and ls1 forget embedded IP checksum fixups; 16 devices
# do not rewrite embedded transport headers.
KINDS = ["reass","frag","param","srcroute","quench","ttl","host","net","port","proto"]
FULL = set(KINDS)
BASE = {"port","ttl"}
ICMP = {}
for t in TAGS:
    ICMP[t] = dict(tcp=set(FULL), udp=set(FULL), ping_host=True,
                   rewrite=True, fix_ip=True, fix_l4=True, rst=False)
def setk(t, tcp=None, udp=None, ping=None):
    if tcp is not None: ICMP[t]["tcp"] = set(tcp)
    if udp is not None: ICMP[t]["udp"] = set(udp)
    if ping is not None: ICMP[t]["ping_host"] = ping

# nw1: nothing.
setk("nw1", tcp=set(), udp=set(), ping=False)
# The five-bullet devices: baseline both transports, nothing else.
for t in ["dl10","dl4","dl9","smc"]:
    setk(t, tcp=BASE, udp=BASE, ping=False)
# be1/be2/ng5 (9 bullets): baseline + host unreachable both ways + ping.
for t in ["be1","be2","ng5"]:
    setk(t, tcp=BASE|{"host"}, udp=BASE|{"host"}, ping=True)
# ls2 (11): all UDP kinds, TCP errors become invalid RSTs.
setk("ls2", tcp=set(), udp=FULL, ping=False)
ICMP["ls2"]["rst"] = True
# ls1 (13): baseline+host+net both ways, frag-needed for TCP, ping, and the
# checksum bug (rewrites embedded headers but forgets the IP checksum).
setk("ls1", tcp=BASE|{"host","net","frag"}, udp=BASE|{"host","net"}, ping=True)
ICMP["ls1"]["fix_ip"] = False
# zy1 (22): full minus source quench both ways, with the checksum bug.
setk("zy1", tcp=FULL-{"quench"}, udp=FULL-{"quench"}, ping=True)
ICMP["zy1"]["fix_ip"] = False
# 23-bullet devices: one kind missing (source quench on the TCP side).
for t in ["as1","dl1","dl8","ls3","ls5","ng3","ng4","te"]:
    setk(t, tcp=FULL-{"quench"}, udp=FULL)
# 22-bullet devices: source quench missing on both sides.
for t in ["dl3","dl5","ng1","ng2"]:
    setk(t, tcp=FULL-{"quench"}, udp=FULL-{"quench"})
# 16 devices do not rewrite embedded transport headers (prose in §4.3).
# nw1 is excluded (it forwards nothing, so rewriting is unobservable) and
# zy1/ls1 are excluded (they *do* rewrite — their bug is the stale
# checksum); the count is made up with three mid-tier devices.
NO_REWRITE = ["be1","be2","dl10","dl4","dl9","ls2","ng5","smc",
              "dl3","dl5","ng1","ng2","te","ng3","ng4","dl1"]
for t in NO_REWRITE:
    ICMP[t]["rewrite"] = False
    ICMP[t]["fix_l4"] = False

# ------------------------------------------------------------ checks -----
def check():
    import statistics as st
    def pop(d):
        vals = [float(d[t]) for t in TAGS]
        return st.median(vals), sum(vals)/len(vals)
    m,mean = pop(UDP1); assert abs(m-90)<1e-9 and abs(mean-160.41)<0.05,(m,mean)
    order = [UDP1[t] for t in UDP1_ORDER]
    assert order == sorted(order), "udp1 order"
    m,mean = pop(UDP2); assert abs(m-180)<1e-9 and abs(mean-174.67)<0.05,(m,mean)
    order = [UDP2[t] for t in UDP2_ORDER]
    assert order == sorted(order), "udp2 order"
    assert min(UDP2.values()) == 54
    m,mean = pop(UDP3); assert abs(m-181)<1e-9 and abs(mean-225.94)<0.05,(m,mean)
    for t in TAGS: assert UDP3[t] >= UDP2[t]-1e-9, (t,UDP2[t],UDP3[t])
    order = [UDP3[t] for t in UDP3_ORDER]
    assert order == sorted(order), "udp3 order"
    m,mean = pop(TCP1_MIN)
    assert abs(m-59.98)<1e-9,(m,)
    assert abs(mean-386.46)<0.05,(mean,)
    order=[TCP1_MIN[t] for t in TCP1_ORDER]; assert order==sorted(order)
    m,mean = pop(TCP4); assert abs(m-135.5)<1e-9 and abs(mean-259.21)<0.05,(m,mean)
    order=[TCP4[t] for t in TCP4_ORDER]; assert order==sorted(order)
    assert len(SEQUENTIAL)==7 and len(QUARANTINE)==4
    assert len(PASSTHROUGH)==4 and len(IPREWRITE_OK)==18 and len(IPREWRITE_NOIN)==2 and len(DROP)==10
    assert set(PASSTHROUGH+IPREWRITE_OK+IPREWRITE_NOIN+DROP)==set(TAGS)
    assert len(DNS_TCP_ANSWER)+len(DNS_TCP_UDP)==10
    assert len(DNS_TCP_ANSWER)+len(DNS_TCP_UDP)+len(DNS_TCP_BLACKHOLE)==14
    print("all constraints satisfied")
    print("udp1 pop", pop(UDP1), "udp2", pop(UDP2), "udp3", pop(UDP3))
    print("tcp1", pop(TCP1_MIN), "tcp4", pop(TCP4))

# ------------------------------------------------------------ codegen ----
KIND_RS = {"reass":"ReassemblyTimeExceeded","frag":"FragNeeded","param":"ParamProblem",
           "srcroute":"SourceRouteFailed","quench":"SourceQuench","ttl":"TtlExceeded",
           "host":"HostUnreachable","net":"NetUnreachable","port":"PortUnreachable",
           "proto":"ProtoUnreachable"}

def kindset(s):
    if s == FULL: return "IcmpKindSet::ALL"
    if not s: return "IcmpKindSet::NONE"
    e = "IcmpKindSet::NONE"
    for k in KINDS:
        if k in s: e += f".with(IcmpErrorKind::{KIND_RS[k]})"
    return e

def emit():
    out = []
    out.append("//! Calibrated data for the 34 devices of Table 1.")
    out.append("//!")
    out.append("//! GENERATED by tools/calibrate.py — edit that script, not this file.")
    out.append("//! Values marked `stated` come directly from the paper; the rest are")
    out.append("//! reconstructed to satisfy the published orderings and population")
    out.append("//! statistics (see DESIGN.md §5).")
    out.append("")
    out.append("use hgw_core::Duration;")
    out.append("use hgw_gateway::policy::*;")
    out.append("")
    out.append("use crate::profile::{DeviceProfile, Expected};")
    out.append("")
    out.append("/// Builds the full calibrated registry (34 devices, Table 1 order).")
    out.append("#[allow(clippy::too_many_lines)]")
    out.append("pub(crate) fn build_all() -> Vec<DeviceProfile> {")
    out.append("    vec![")
    for t in TAGS:
        ven, model, fw = VENDOR[t]
        g = GRANULARITY.get(t, 1)
        u1 = UDP1[t]; u2 = UDP2[t]; u3 = UDP3[t]
        # Configured timeout compensates for coarse-timer inflation (~G/2).
        # The expiry grid (ceil to granularity) inflates observed
        # lifetimes by ~g/2 on average; configure compensated values.
        # UDP-1's binary search lands ~g/2 above the configured value (the
        # expiry grid); the UDP-2/3 increasing-gap method refreshes at
        # varying phases and lands only ~3 s above it on coarse devices.
        # The probers stagger trial phases across the expiry grid; the
        # modified binary search tracks the *shortest observed expiration*,
        # so it converges near the low edge of the quantized-lifetime
        # distribution: fine-grained timers need no compensation, coarse
        # ones a small one.
        comp = 0 if g <= 1 else 2.5
        c1 = max(1, u1 - (UDP1_BIAS.get(t, 0) if g > 1 else 0))
        c2 = max(1, u2 - comp)
        c3 = max(1, u3 - comp)
        def dur(v):
            return (f"Duration::from_secs({int(v)})" if float(v).is_integer()
                    else f"Duration::from_millis({int(round(v*1000))})")
        tcp1_min = TCP1_MIN[t]
        tcp_secs = round(tcp1_min*60) if tcp1_min < 1440 else 7*24*3600
        if t in SEQUENTIAL:
            port = "PortAssignment::Sequential"
        elif t in QUARANTINE:
            port = "PortAssignment::Preserve { reuse_expired: false }"
        else:
            port = "PortAssignment::Preserve { reuse_expired: true }"
        if t in PASSTHROUGH:
            unk = "UnknownProtoPolicy::PassThrough"
        elif t in IPREWRITE_OK:
            unk = "UnknownProtoPolicy::IpRewrite { allow_inbound: true }"
        elif t in IPREWRITE_NOIN:
            unk = "UnknownProtoPolicy::IpRewrite { allow_inbound: false }"
        else:
            unk = "UnknownProtoPolicy::Drop"
        if t in DNS_TCP_ANSWER:
            dns_tcp = "DnsTcpMode::AnswerViaTcp"
        elif t in DNS_TCP_UDP:
            dns_tcp = "DnsTcpMode::AnswerViaUdp"
        elif t in DNS_TCP_BLACKHOLE:
            dns_tcp = "DnsTcpMode::AcceptNoAnswer"
        else:
            dns_tcp = "DnsTcpMode::Refuse"
        down, up, agg, buf = FWD[t]
        # Binding-setup cost scales inversely with forwarding horsepower
        # (reconstructed; §5 lists binding-creation rate as future work).
        cost_us = 400 if down < 10 else (150 if down < 50 else (60 if down < 100 else 25))
        agg_rs = "u64::MAX" if agg is None else f"{int(agg*1_000_000)}"
        ic = ICMP[t]
        overrides = SERVICE_OVERRIDES.get(t, [])
        ov_rs = ", ".join(f"({p}, Duration::from_secs({s}))" for p, s in overrides)
        # Filtering/mapping: sequential allocators behave symmetrically
        # (address+port dependent mapping), the rest are cone-style.
        if t in SEQUENTIAL:
            mapping = "EndpointScope::AddressAndPortDependent"
        else:
            mapping = "EndpointScope::EndpointIndependent"
        filtering = {"owrt":"EndpointScope::EndpointIndependent",
                     "to":"EndpointScope::EndpointIndependent",
                     "ap":"EndpointScope::EndpointIndependent",
                     "al":"EndpointScope::AddressDependent",
                     "we":"EndpointScope::AddressDependent",
                     "je":"EndpointScope::AddressDependent",
                     }.get(t, "EndpointScope::AddressAndPortDependent")
        ttl_dec = "false" if t in ("dl9","smc","dl10") else "true"
        rr = "true" if t in ("owrt",) else "false"
        hairpin = "true" if t in ("owrt","to","ap","bu1") else "false"
        out.append(f"""        DeviceProfile {{
            tag: "{t}",
            vendor: "{ven}",
            model: "{model}",
            firmware: "{fw}",
            policy: GatewayPolicy {{
                udp_timeout_solitary: {dur(c1)},
                udp_timeout_inbound: {dur(c2)},
                udp_timeout_bidirectional: {dur(c3)},
                udp_service_overrides: vec![{ov_rs}],
                timer_granularity: Duration::from_secs({g}),
                tcp_timeout: Duration::from_secs({tcp_secs}),
                max_bindings: {TCP4[t]},
                port_assignment: {port},
                filtering: {filtering},
                mapping: {mapping},
                hairpinning: {hairpin},
                icmp: IcmpPolicy {{
                    tcp_kinds: {kindset(ic['tcp'])},
                    udp_kinds: {kindset(ic['udp'])},
                    icmp_query_host_unreach: {str(ic['ping_host']).lower()},
                    rewrite_embedded: {str(ic['rewrite']).lower()},
                    fix_embedded_ip_checksum: {str(ic['fix_ip']).lower()},
                    fix_embedded_l4_checksum: {str(ic['fix_l4']).lower()},
                    tcp_errors_as_rst: {str(ic['rst']).lower()},
                }},
                unknown_proto: {unk},
                binding_setup_cost: Duration::from_micros({cost_us}),
                forwarding: ForwardingModel {{
                    up_bps: {int(up*1_000_000)},
                    down_bps: {int(down*1_000_000)},
                    aggregate_bps: {agg_rs},
                    buffer_up: {buf} * 1024,
                    buffer_down: {buf} * 1024,
                    per_packet_overhead: Duration::from_micros(20),
                }},
                nat_checksum: NatChecksumMode::Incremental,
                decrement_ttl: {ttl_dec},
                honor_record_route: {rr},
                dns_proxy: DnsProxyPolicy {{ udp: true, tcp: {dns_tcp} }},
            }},
            expected: Expected {{
                udp1_secs: {float(u1)},
                udp2_secs: {float(u2)},
                udp3_secs: {float(u3)},
                tcp1_mins: {float(tcp1_min)},
                max_bindings: {TCP4[t]},
            }},
        }},""")
    out.append("    ]")
    out.append("}")
    with open("crates/devices/src/data.rs", "w") as f:
        f.write("\n".join(out) + "\n")
    print("wrote crates/devices/src/data.rs")

if __name__ == "__main__":
    check()
    emit()
